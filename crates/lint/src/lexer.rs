//! A hand-rolled Rust lexer.
//!
//! The build environment is offline, so there is no `syn`/`proc-macro2`;
//! the rule engine works on a flat token stream instead of a syntax tree.
//! That is enough for every rule in the catalogue: the invariants are all
//! expressible as "this identifier / token sequence appears (or does not
//! appear) in this region of this file".
//!
//! The lexer understands exactly the surface it must not be fooled by:
//! line and (nested) block comments, string literals in every flavour the
//! workspace uses (escaped, raw with any `#` depth, byte, byte-raw), char
//! literals vs. lifetimes, and numeric literals including float exponents
//! and `0..n` range punctuation. Keywords are emitted as plain identifier
//! tokens — rules match on their text.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `unwrap`, `unsafe`, `let`).
    Ident,
    /// A string literal of any flavour; `text` holds the *inner* content
    /// (quotes, raw `#` fences and `b`/`r` prefixes stripped, escapes left
    /// as written).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// A numeric literal (`42`, `0xFF`, `1.5e-9`, `4u32`).
    Num,
    /// A single punctuation character (`(`, `=`, `>`, ...). Multi-char
    /// operators arrive as consecutive single-char tokens.
    Punct,
}

/// One lexical token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The token text (see [`TokenKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Whether the token sits inside a `#[cfg(test)]` / `#[test]` item.
    /// Filled in by [`crate::source::mark_test_regions`]; `false` at lex
    /// time.
    pub in_test: bool,
}

/// One comment (line or block) with its position; comments are kept out of
/// the token stream so adjacency rules see code shape only, but they carry
/// the inline suppression syntax so they are preserved here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text *without* the `//` / `/* */` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based column where the comment starts.
    pub col: u32,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, tracking line/column. Columns count characters:
    /// UTF-8 continuation bytes do not advance the column.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if !pred(b) {
                break;
            }
            self.bump();
        }
        self.pos - start
    }

    fn slice(&self, from: usize) -> &'a str {
        // The lexer only slices at character boundaries it has itself
        // walked over, so this cannot split a UTF-8 sequence.
        std::str::from_utf8(&self.bytes[from..self.pos]).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes one Rust source file. Never fails: unrecognized bytes become
/// punctuation tokens, and an unterminated literal runs to end of file —
/// for a linter, resilience beats strictness (rustc reports real syntax
/// errors; the linter must still scan the rest of the tree).
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = c.peek() {
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                c.bump();
                c.bump();
                let text_start = c.pos;
                c.eat_while(|b| b != b'\n');
                out.comments.push(Comment {
                    text: c.slice(text_start).to_string(),
                    line,
                    col,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let text_start = c.pos;
                let mut depth = 1usize;
                let mut text_end = c.pos;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            text_end = c.pos;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = std::str::from_utf8(&c.bytes[text_start..text_end.max(text_start)])
                    .unwrap_or("")
                    .to_string();
                out.comments.push(Comment { text, line, col });
            }
            b'"' => {
                let text = lex_quoted(&mut c);
                out.tokens.push(token(TokenKind::Str, text, line, col));
            }
            b'\'' => {
                lex_char_or_lifetime(&mut c, &mut out, line, col);
            }
            b'r' | b'b' if starts_prefixed_literal(&c) => {
                lex_prefixed_literal(&mut c, &mut out, line, col);
            }
            _ if is_ident_start(b) => {
                c.eat_while(is_ident_continue);
                out.tokens.push(token(
                    TokenKind::Ident,
                    c.slice(start).to_string(),
                    line,
                    col,
                ));
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                out.tokens
                    .push(token(TokenKind::Num, c.slice(start).to_string(), line, col));
            }
            _ => {
                c.bump();
                out.tokens
                    .push(token(TokenKind::Punct, (b as char).to_string(), line, col));
            }
        }
    }
    out
}

fn token(kind: TokenKind, text: String, line: u32, col: u32) -> Token {
    Token {
        kind,
        text,
        line,
        col,
        in_test: false,
    }
}

/// Whether the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#` —
/// i.e. a prefixed string/char literal rather than an identifier starting
/// with `r`/`b`.
fn starts_prefixed_literal(c: &Cursor<'_>) -> bool {
    matches!(
        (c.peek(), c.peek_at(1), c.peek_at(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

fn lex_prefixed_literal(c: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut raw = false;
    let mut byte_char = false;
    while let Some(b) = c.peek() {
        match b {
            b'r' => {
                raw = true;
                c.bump();
            }
            b'b' => {
                c.bump();
                if c.peek() == Some(b'\'') {
                    byte_char = true;
                    break;
                }
            }
            _ => break,
        }
    }
    if byte_char {
        c.bump(); // opening '
        let text = lex_char_body(c);
        out.tokens.push(token(TokenKind::Char, text, line, col));
    } else if raw {
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            hashes += 1;
            c.bump();
        }
        if c.peek() == Some(b'"') {
            c.bump();
            let text_start = c.pos;
            let mut text_end = c.pos;
            'scan: while let Some(b) = c.peek() {
                if b == b'"' {
                    text_end = c.pos;
                    c.bump();
                    for _ in 0..hashes {
                        if c.peek() == Some(b'#') {
                            c.bump();
                        } else {
                            continue 'scan;
                        }
                    }
                    break;
                }
                c.bump();
                text_end = c.pos;
            }
            let text = std::str::from_utf8(&c.bytes[text_start..text_end])
                .unwrap_or("")
                .to_string();
            out.tokens.push(token(TokenKind::Str, text, line, col));
        } else {
            // `r#ident` (a raw identifier): the `#`s were consumed; lex
            // the identifier itself.
            let start = c.pos;
            c.eat_while(is_ident_continue);
            out.tokens.push(token(
                TokenKind::Ident,
                c.slice(start).to_string(),
                line,
                col,
            ));
        }
    } else {
        // b"..."
        let text = lex_quoted(c);
        out.tokens.push(token(TokenKind::Str, text, line, col));
    }
}

/// Lexes a `"..."` body (cursor on the opening quote); returns the inner
/// text with escapes left as written.
fn lex_quoted(c: &mut Cursor<'_>) -> String {
    c.bump(); // opening "
    let start = c.pos;
    let mut end = c.pos;
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
                end = c.pos;
            }
            b'"' => {
                end = c.pos;
                c.bump();
                break;
            }
            _ => {
                c.bump();
                end = c.pos;
            }
        }
    }
    std::str::from_utf8(&c.bytes[start..end])
        .unwrap_or("")
        .to_string()
}

/// Lexes the body of a char literal after its opening `'`; returns the
/// inner text.
fn lex_char_body(c: &mut Cursor<'_>) -> String {
    let start = c.pos;
    let mut end = c.pos;
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
                end = c.pos;
            }
            b'\'' => {
                end = c.pos;
                c.bump();
                break;
            }
            _ => {
                c.bump();
                end = c.pos;
            }
        }
    }
    std::str::from_utf8(&c.bytes[start..end])
        .unwrap_or("")
        .to_string()
}

/// Disambiguates `'a'` (char) from `'a` (lifetime). A `'` followed by an
/// identifier is a lifetime unless the identifier is one character long
/// and immediately followed by a closing `'`.
fn lex_char_or_lifetime(c: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    c.bump(); // the '
    match c.peek() {
        Some(b'\\') => {
            let text = lex_char_body(c);
            out.tokens.push(token(TokenKind::Char, text, line, col));
        }
        Some(b) if is_ident_start(b) => {
            let start = c.pos;
            c.eat_while(is_ident_continue);
            if c.peek() == Some(b'\'') {
                let text = c.slice(start).to_string();
                c.bump();
                out.tokens.push(token(TokenKind::Char, text, line, col));
            } else {
                out.tokens.push(token(
                    TokenKind::Lifetime,
                    c.slice(start).to_string(),
                    line,
                    col,
                ));
            }
        }
        _ => {
            let text = lex_char_body(c);
            out.tokens.push(token(TokenKind::Char, text, line, col));
        }
    }
}

/// Lexes a numeric literal. A `.` continues the number only when followed
/// by a digit (so `0..n` stays three tokens), and `+`/`-` continue it only
/// directly after an exponent `e`/`E` in a decimal literal.
fn lex_number(c: &mut Cursor<'_>) {
    let hex = c.peek() == Some(b'0') && matches!(c.peek_at(1), Some(b'x' | b'X' | b'o' | b'b'));
    c.bump();
    let mut prev = 0u8;
    while let Some(b) = c.peek() {
        let continues = match b {
            b'0'..=b'9' | b'_' => true,
            b'.' => !hex && c.peek_at(1).is_some_and(|n| n.is_ascii_digit()),
            b'+' | b'-' => !hex && matches!(prev, b'e' | b'E'),
            _ => b.is_ascii_alphanumeric(),
        };
        if !continues {
            break;
        }
        prev = b;
        c.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        let toks = kinds("let x = foo.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "foo".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        // Identifier-looking content inside literals must not produce
        // Ident tokens — rules must not fire on `"HashMap"`.
        let toks = kinds(r#"let s = "HashMap::unwrap() // not a comment";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "HashMap" && t != "unwrap")));
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let a = r#"quote " inside"#; let b = b"bytes"; let c = r"raw";"##);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec![r#"quote " inside"#, "bytes", "raw"]);
    }

    #[test]
    fn char_versus_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-9; let h = 0xFF_u32; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-9", "0xFF_u32"]);
        // The `..` survives as two punct tokens.
        let dots = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Punct && t == ".")
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn comments_are_captured_with_positions() {
        let lexed = lex("code();\n// a line comment\nmore(); /* block\ncomment */ after();");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, " a line comment");
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[1].text.contains("block"));
        // The token after the block comment still gets a position.
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still outer */ x();");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens[0].text, "x");
    }

    #[test]
    fn positions_are_one_based_and_character_counted() {
        let lexed = lex("ab cd\n  héllo");
        let t = &lexed.tokens[2];
        assert_eq!((t.line, t.col), (2, 3));
        assert_eq!(t.text, "héllo");
    }
}

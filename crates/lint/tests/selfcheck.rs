//! The analyzer against the real workspace: clean with the committed
//! baseline, and demonstrably *not* clean the moment any suppression or
//! baseline entry is deleted — the acceptance checks, as tests.

use lint::engine::{load_unsafe_whitelist, Baseline, Workspace};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a grandparent")
        .to_path_buf()
}

fn real_findings() -> Vec<lint::rules::Finding> {
    let root = repo_root();
    let whitelist = load_unsafe_whitelist(&root).expect("whitelist readable");
    Workspace::scan_root(&root)
        .expect("workspace scannable")
        .run(&whitelist)
}

#[test]
fn workspace_is_clean_under_the_committed_baseline() {
    let root = repo_root();
    let baseline = Baseline::load(&root.join("crates/lint/baseline.tsv")).expect("baseline parses");
    let findings = baseline.apply(real_findings());
    assert!(
        findings.is_empty(),
        "betalike-lint found new violations:\n{}",
        findings
            .iter()
            .map(|f| format!("{}:{}:{}: {}: {}", f.path, f.line, f.col, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_suppression_in_the_tree_is_live() {
    // The clean run above already implies no S1/S2 — this pins the raw
    // (pre-baseline) findings too, since S1/S2 can never be baselined.
    let raw = real_findings();
    assert!(
        !raw.iter().any(|f| f.rule == "S1" || f.rule == "S2"),
        "suppression hygiene findings: {raw:?}"
    );
}

#[test]
fn deleting_a_suppression_resurfaces_its_finding_with_rule_and_span() {
    // Strip each committed inline suppression in turn; the run must then
    // fail with the suppressed rule at the suppressed site.
    let root = repo_root();
    let suppressed = [
        ("crates/server/src/artifact.rs", "P1"),
        ("crates/server/src/persist.rs", "P1"),
        ("crates/bench/src/bin/perf.rs", "D3"),
    ];
    for (path, rule) in suppressed {
        let text = std::fs::read_to_string(root.join(path)).expect("readable");
        assert!(
            text.contains("betalike-lint:"),
            "{path}: suppression vanished"
        );
        let stripped: String = text
            .lines()
            .filter(|l| !l.contains("betalike-lint:"))
            .map(|l| format!("{l}\n"))
            .collect();
        let mut ws = Workspace::from_files(vec![(path.to_string(), stripped)]);
        let findings = ws.run(&Default::default());
        let hit = findings.iter().find(|f| f.rule == rule).unwrap_or_else(|| {
            panic!("{path}: deleting the allow-comment did not resurface {rule}")
        });
        assert!(
            hit.line > 0 && hit.col > 0,
            "finding must carry a span: {hit:?}"
        );
    }
}

#[test]
fn shrinking_the_baseline_resurfaces_the_grandfathered_finding() {
    let root = repo_root();
    let text =
        std::fs::read_to_string(root.join("crates/lint/baseline.tsv")).expect("baseline readable");
    let entries: Vec<&str> = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .collect();
    assert!(!entries.is_empty(), "baseline unexpectedly empty");
    // Drop each entry in turn: exactly that entry's findings must surface,
    // naming the rule.
    for dropped in &entries {
        let shrunk: String = entries
            .iter()
            .filter(|l| l != &dropped)
            .map(|l| format!("{l}\n"))
            .collect();
        let baseline = Baseline::parse(&shrunk).expect("shrunk baseline parses");
        let findings = baseline.apply(real_findings());
        let rule = dropped.split('\t').next().expect("rule column");
        assert!(
            findings.iter().any(|f| f.rule == rule && f.line > 0),
            "dropping `{dropped}` did not resurface a {rule} finding"
        );
    }
}

#[test]
fn removing_a_scheme_from_the_battery_fails_x2() {
    // The acceptance fixture against the *real* wire.rs and battery.rs:
    // erase `sabre` from the battery and X2 must name it.
    let root = repo_root();
    let wire = std::fs::read_to_string(root.join("crates/server/src/wire.rs")).expect("wire.rs");
    let battery = std::fs::read_to_string(root.join("crates/conformance/src/battery.rs"))
        .expect("battery.rs");
    assert!(battery.contains("sabre"), "battery no longer names sabre");
    let mut ws = Workspace::from_files(vec![
        ("crates/server/src/wire.rs".to_string(), wire),
        (
            "crates/conformance/src/battery.rs".to_string(),
            battery.replace("sabre", "sabrx"),
        ),
    ]);
    let findings = ws.run(&Default::default());
    let hit = findings
        .iter()
        .find(|f| f.rule == "X2" && f.message.contains("`sabre`"))
        .expect("X2 must fire when the battery loses a scheme");
    assert_eq!(hit.path, "crates/conformance/src/battery.rs");
}

#[test]
fn the_unsafe_whitelist_names_only_the_poll_shim_and_every_crate_forbids_unsafe() {
    let root = repo_root();
    let whitelist = load_unsafe_whitelist(&root).expect("whitelist readable");
    // The readiness syscall shim is the one reviewed exception (DESIGN.md
    // §15); anything else appearing here must be argued in DESIGN.md §11
    // and reflected in this test.
    let expected: std::collections::BTreeSet<String> =
        ["vendor/mini-poll/src/sys.rs".to_string()].into();
    assert_eq!(
        whitelist, expected,
        "the unsafe whitelist changed; reflect that here and in DESIGN.md §11/§15"
    );
    // The whitelisted module really is the only unsafe surface: the crate
    // root re-denies unsafe_code so the exception cannot leak outward.
    let poll_lib = std::fs::read_to_string(root.join("vendor/mini-poll/src/lib.rs"))
        .expect("mini-poll lib.rs readable");
    assert!(
        poll_lib.contains("#![deny(unsafe_code)]"),
        "vendor/mini-poll/src/lib.rs must deny unsafe_code outside the sys shim"
    );
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/") {
        let lib = entry.expect("entry").path().join("src/lib.rs");
        let text = std::fs::read_to_string(&lib).expect("lib.rs readable");
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{} does not forbid unsafe_code",
            lib.display()
        );
    }
}

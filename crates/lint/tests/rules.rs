//! Fixture tests: for every rule, an offending snippet (with its line and
//! column asserted) and a passing twin, plus the suppression and baseline
//! semantics.

use lint::engine::{Baseline, Workspace};
use lint::rules::Finding;
use std::collections::BTreeSet;

fn run(files: &[(&str, &str)]) -> Vec<Finding> {
    let mut ws = Workspace::from_files(
        files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect(),
    );
    ws.run(&BTreeSet::new())
}

fn only(findings: &[Finding], rule: &str) -> Vec<Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .cloned()
        .collect()
}

#[test]
fn d1_hashmap_in_deterministic_crate() {
    let bad = run(&[(
        "crates/core/src/lib.rs",
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
    )]);
    let hits = only(&bad, "D1");
    assert_eq!(hits.len(), 3, "one finding per mention: {hits:?}");
    assert_eq!((hits[0].line, hits[0].col), (1, 23));

    // Twin 1: BTreeMap in the same crate is fine. Twin 2: HashMap in the
    // server registry (outside the deterministic set) is fine.
    let good = run(&[
        (
            "crates/core/src/lib.rs",
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n",
        ),
        (
            "crates/server/src/registry.rs",
            "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n",
        ),
    ]);
    assert!(only(&good, "D1").is_empty());
}

#[test]
fn d2_wall_clock_outside_bench() {
    let bad = run(&[(
        "crates/query/src/lib.rs",
        "fn f() { let t = std::time::Instant::now(); }\n",
    )]);
    let hits = only(&bad, "D2");
    assert_eq!(hits.len(), 1);
    assert_eq!((hits[0].line, hits[0].col), (1, 29));
    assert_eq!(hits[0].snippet, "Instant");

    let good = run(&[(
        "crates/bench/src/lib.rs",
        "fn f() { let t = std::time::Instant::now(); }\n",
    )]);
    assert!(only(&good, "D2").is_empty());
}

#[test]
fn d3_adhoc_threads() {
    let bad = run(&[(
        "crates/query/src/lib.rs",
        "fn f() {\n    std::thread::spawn(|| {});\n}\n",
    )]);
    let hits = only(&bad, "D3");
    assert_eq!(hits.len(), 1);
    assert_eq!((hits[0].line, hits[0].col), (2, 10));

    // Twins: the vendored pool may spawn; test code may spawn; and a
    // different `thread::` member (e.g. `sleep`) is not a finding.
    let good = run(&[
        (
            "vendor/mini-rayon/src/lib.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        ),
        (
            "crates/query/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n\
             fn g() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
        ),
    ]);
    assert!(only(&good, "D3").is_empty());
}

#[test]
fn d4_entropy_rng_outside_tests() {
    let bad = run(&[(
        "crates/baselines/src/lib.rs",
        "fn f() { let rng = ChaCha8Rng::from_entropy(); }\n",
    )]);
    let hits = only(&bad, "D4");
    assert_eq!(hits.len(), 1);
    assert_eq!((hits[0].line, hits[0].col), (1, 32));

    let good = run(&[(
        "crates/baselines/src/lib.rs",
        "fn f() { let rng = ChaCha8Rng::seed_from_u64(7); }\n\
         #[test]\nfn t() { let rng = ChaCha8Rng::from_entropy(); }\n",
    )]);
    assert!(only(&good, "D4").is_empty());
}

#[test]
fn p1_panics_on_request_and_decode_paths() {
    let src = "fn f(v: &[u32], m: Option<u32>) -> u32 {\n\
               \x20   let a = m.unwrap();\n\
               \x20   let b = m.expect(\"set\");\n\
               \x20   if v.is_empty() { panic!(\"empty\"); }\n\
               \x20   a + b + v[0]\n\
               }\n";
    let bad = run(&[("crates/server/src/handler.rs", src)]);
    let hits = only(&bad, "P1");
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert_eq!(
        (hits[0].line, hits[0].col, hits[0].snippet.as_str()),
        (2, 15, "unwrap")
    );
    assert_eq!(
        (hits[1].line, hits[1].col, hits[1].snippet.as_str()),
        (3, 15, "expect")
    );
    assert_eq!(
        (hits[2].line, hits[2].col, hits[2].snippet.as_str()),
        (4, 23, "panic")
    );
    // Index findings anchor on the `[` itself.
    assert_eq!(
        (hits[3].line, hits[3].col, hits[3].snippet.as_str()),
        (5, 14, "v[")
    );

    // The same code outside server/store is not P1's business.
    let good = run(&[("crates/core/src/lib.rs", src)]);
    assert!(only(&good, "P1").is_empty());
}

#[test]
fn p1_spares_nonpanicking_lookalikes() {
    let good = run(&[(
        "crates/store/src/x.rs",
        "fn f(v: &[u32], m: Option<u32>) -> u32 {\n\
         \x20   let a = m.unwrap_or(0);\n\
         \x20   let b = m.unwrap_or_else(|| 1);\n\
         \x20   let whole = &v[..];\n\
         \x20   let arr = [1u32, 2];\n\
         \x20   let &[x, y] = &arr;\n\
         \x20   a + b + whole.len() as u32 + x + y + Section::expect(0)\n\
         }\n",
    )]);
    assert!(only(&good, "P1").is_empty(), "{good:?}");

    // `take(1)?[0]` is an index through `?` — still a finding.
    let bad = run(&[(
        "crates/store/src/x.rs",
        "fn f(v: Option<&[u32]>) -> Option<u32> { Some(v?[0]) }\n",
    )]);
    assert_eq!(only(&bad, "P1").len(), 1);
}

#[test]
fn p2_unsafe_outside_whitelist() {
    let files = vec![(
        "crates/hilbert/src/fast.rs".to_string(),
        "fn f(v: &[u32]) -> u32 { unsafe { *v.get_unchecked(0) } }\n".to_string(),
    )];
    let mut ws = Workspace::from_files(files.clone());
    let hits = only(&ws.run(&BTreeSet::new()), "P2");
    assert_eq!(hits.len(), 1);
    assert_eq!((hits[0].line, hits[0].col), (1, 26));

    // Whitelisting the file silences it.
    let whitelist: BTreeSet<String> = ["crates/hilbert/src/fast.rs".to_string()].into();
    let mut ws = Workspace::from_files(files);
    assert!(only(&ws.run(&whitelist), "P2").is_empty());
}

#[test]
fn f1_direct_fs_calls_in_the_store() {
    let bad = run(&[(
        "crates/store/src/disk.rs",
        "fn f() { let b = std::fs::read(\"x\"); }\n",
    )]);
    let hits = only(&bad, "F1");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!((hits[0].line, hits[0].col), (1, 23));
    assert!(hits[0].message.contains("fs::read"));

    // Twins: store test code may hit the real filesystem; other crates are
    // not F1's business; `use std::fs;` alone (no member call) is inert.
    let good = run(&[
        (
            "crates/store/src/disk.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { let _ = std::fs::read(\"x\"); }\n}\n",
        ),
        (
            "crates/conformance/src/lib.rs",
            "fn f() { let _ = std::fs::read(\"x\"); }\n",
        ),
    ]);
    assert!(only(&good, "F1").is_empty(), "{good:?}");
}

const DISPATCH: &str =
    "fn dispatch(op: &str) -> u32 {\n    match op {\n        \"ping\" => 1,\n        _ => 0,\n    }\n}\n";

#[test]
fn x1_ops_must_reach_both_clients_and_the_docs() {
    // `ping` is dispatched but the client library never mentions it.
    let bad = run(&[
        ("crates/server/src/server.rs", DISPATCH),
        ("crates/server/src/client.rs", "fn nothing() {}\n"),
        (
            "crates/server/src/bin/betalike_client.rs",
            "fn main() { let _ = \"ping\"; }\n",
        ),
        ("DESIGN.md", "ops: `ping`\n"),
    ]);
    let hits = only(&bad, "X1");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("`ping`"));
    assert!(hits[0].message.contains("client.rs"));
    // The finding points at the dispatch arm, not the missing surface.
    assert_eq!(
        (hits[0].path.as_str(), hits[0].line, hits[0].col),
        ("crates/server/src/server.rs", 3, 9)
    );

    // The docs surface requires the backticked name, not just the word.
    let undocumented = run(&[
        ("crates/server/src/server.rs", DISPATCH),
        (
            "crates/server/src/client.rs",
            "fn f() { let _ = \"ping\"; }\n",
        ),
        (
            "crates/server/src/bin/betalike_client.rs",
            "fn main() { let _ = \"ping\"; }\n",
        ),
        ("DESIGN.md", "we also ping the server sometimes\n"),
    ]);
    assert_eq!(only(&undocumented, "X1").len(), 1);

    let good = run(&[
        ("crates/server/src/server.rs", DISPATCH),
        (
            "crates/server/src/client.rs",
            "fn f() { let _ = \"ping\"; }\n",
        ),
        (
            "crates/server/src/bin/betalike_client.rs",
            "fn main() { let _ = \"ping\"; }\n",
        ),
        ("DESIGN.md", "ops: `ping`\n"),
    ]);
    assert!(only(&good, "X1").is_empty());
}

const WIRE: &str = "impl Algo {\n\
                    \x20   fn as_str(&self) -> &str {\n\
                    \x20       match self {\n\
                    \x20           Algo::Burel => \"burel\",\n\
                    \x20           Algo::Sabre => \"sabre\",\n\
                    \x20       }\n\
                    \x20   }\n\
                    }\n";

#[test]
fn x2_schemes_must_be_wired_through_every_site() {
    // The acceptance fixture: dropping one scheme name from the battery
    // must fail, naming the scheme and the file.
    let bad = run(&[
        ("crates/server/src/wire.rs", WIRE),
        (
            "crates/conformance/src/battery.rs",
            "fn beta_of(algo: &str) -> bool { matches!(algo, \"burel\") }\n",
        ),
    ]);
    let hits = only(&bad, "X2");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].path, "crates/conformance/src/battery.rs");
    assert!(hits[0].message.contains("`sabre`"));

    // Naming the scheme — as a string, or as an enum variant ident — fixes
    // it; sites absent from the file set are not checked.
    let good = run(&[
        ("crates/server/src/wire.rs", WIRE),
        (
            "crates/conformance/src/battery.rs",
            "fn beta_of(algo: &str) -> bool { matches!(algo, \"burel\" | \"sabre\") }\n",
        ),
        (
            "crates/server/src/persist.rs",
            "fn f() { let _ = (Algo::Burel, Algo::Sabre); }\n",
        ),
        ("DESIGN.md", "schemes: burel, sabre\n"),
    ]);
    assert!(only(&good, "X2").is_empty(), "{good:?}");

    // A compound identifier is not a mention.
    let compound = run(&[
        ("crates/server/src/wire.rs", WIRE),
        (
            "crates/conformance/src/battery.rs",
            "fn f() { run_battery_sabre_like(); let _ = \"burel\"; }\n",
        ),
    ]);
    assert_eq!(only(&compound, "X2").len(), 1);
}

#[test]
fn s1_suppressions_need_a_reason_and_a_known_rule() {
    let missing_reason = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: allow(P1)\nfn f(m: Option<u32>) -> u32 { m.unwrap() }\n",
    )]);
    let hits = only(&missing_reason, "S1");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("without a reason"));
    assert_eq!((hits[0].line, hits[0].col), (1, 1));
    // A reasonless suppression also absorbs nothing.
    assert_eq!(only(&missing_reason, "P1").len(), 1);

    let unknown_rule = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: allow(Z9, reason = \"no such rule\")\nfn f() {}\n",
    )]);
    assert!(only(&unknown_rule, "S1")[0]
        .message
        .contains("not a suppressible rule"));

    let unparseable = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: silence everything\nfn f() {}\n",
    )]);
    assert!(only(&unparseable, "S1")[0].message.contains("malformed"));

    // Meta rules cannot be suppressed away.
    let meta = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: allow(S2, reason = \"nice try\")\nfn f() {}\n",
    )]);
    assert_eq!(only(&meta, "S1").len(), 1);
}

#[test]
fn suppressions_absorb_their_finding() {
    let good = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: allow(P1, reason = \"len checked by caller\")\n\
         fn f(v: &[u32]) -> u32 { v[0] }\n",
    )]);
    assert!(only(&good, "P1").is_empty());
    assert!(only(&good, "S1").is_empty());
    assert!(only(&good, "S2").is_empty());

    // Same-line form.
    let inline = run(&[(
        "crates/server/src/x.rs",
        "fn f(v: &[u32]) -> u32 { v[0] } // betalike-lint: allow(P1, reason = \"len checked\")\n",
    )]);
    assert!(only(&inline, "P1").is_empty());

    // A suppression only covers its own rule.
    let wrong_rule = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: allow(D1, reason = \"wrong rule\")\n\
         fn f(v: &[u32]) -> u32 { v[0] }\n",
    )]);
    assert_eq!(only(&wrong_rule, "P1").len(), 1);
    assert_eq!(only(&wrong_rule, "S2").len(), 1); // and is itself stale
}

#[test]
fn s2_stale_suppressions_are_findings() {
    let stale = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: allow(P1, reason = \"was needed once\")\nfn f() -> u32 { 0 }\n",
    )]);
    let hits = only(&stale, "S2");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("stale suppression"));
    assert_eq!((hits[0].line, hits[0].col), (1, 1));
}

#[test]
fn baseline_grandfathers_by_fingerprint_and_ratchets() {
    let files = &[(
        "crates/server/src/x.rs",
        "fn f(v: &[u32]) -> u32 { v[0] }\n",
    )];
    let raw = run(files);
    assert_eq!(only(&raw, "P1").len(), 1);

    // A matching entry absorbs the finding — regardless of line number.
    let baseline = Baseline::parse("P1\tcrates/server/src/x.rs\t1\tv[\n").unwrap();
    assert!(baseline.apply(raw.clone()).is_empty());

    // A stale entry is a B0 finding: the baseline may only shrink.
    let stale = Baseline::parse(
        "P1\tcrates/server/src/x.rs\t1\tv[\nP1\tcrates/server/src/gone.rs\t1\tw[\n",
    )
    .unwrap();
    let out = stale.apply(raw.clone());
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "B0");
    assert!(out[0].message.contains("gone.rs"));

    // Counts are per-fingerprint: one entry absorbs exactly one finding.
    let two = run(&[(
        "crates/server/src/x.rs",
        "fn f(v: &[u32]) -> u32 { v[0] + v[1] }\n",
    )]);
    assert_eq!(only(&two, "P1").len(), 2);
    let one_budget = Baseline::parse("P1\tcrates/server/src/x.rs\t1\tv[\n").unwrap();
    assert_eq!(one_budget.apply(two).len(), 1);

    // Suppression hygiene is never grandfathered.
    let s2 = run(&[(
        "crates/server/src/x.rs",
        "// betalike-lint: allow(P1, reason = \"stale\")\nfn f() {}\n",
    )]);
    let laundered = Baseline::parse("S2\tcrates/server/src/x.rs\t1\tallow(P1)\n").unwrap();
    let out = laundered.apply(s2);
    assert!(out.iter().any(|f| f.rule == "S2"));
    assert!(out.iter().any(|f| f.rule == "B0"));
}

#[test]
fn malformed_baselines_are_rejected() {
    assert!(Baseline::parse("P1 no tabs here\n").is_err());
    assert!(Baseline::parse("P1\ta.rs\tnotanumber\tx[\n").is_err());
    assert!(Baseline::parse("# comment\n\nP1\ta.rs\t2\tx[\n").is_ok());
}

//! Information-loss metrics (Section 4.1 of the paper).
//!
//! * Numeric attribute loss (Equation 2): the generalized value range over
//!   the domain range.
//! * Categorical attribute loss (Equation 3): the leaf count under the LCA
//!   of the EC's values over the total leaf count (0 for a single value).
//! * EC loss (Equation 4): the weighted sum over QI attributes; the paper
//!   (and our default) weighs attributes equally, `w_i = 1/d`.
//! * AIL (Equation 5): the size-weighted average of EC losses over the
//!   published table — the utility axis of Figures 5–7.

use crate::partition::Partition;
use betalike_microdata::{RowId, Table};

/// Information loss of a single attribute over a row set: Equation 2 for
/// numeric attributes, Equation 3 for categorical ones.
///
/// Returns 0 for an empty row set (an empty EC loses nothing, though
/// anonymizers never emit one).
pub fn attribute_loss(table: &Table, attr: usize, rows: &[RowId]) -> f64 {
    match table.code_extent(attr, rows) {
        None => 0.0,
        Some((lo, hi)) => table.schema().attr(attr).normalized_span(lo, hi),
    }
}

/// Information loss of an EC over the QI attributes with explicit weights
/// (Equation 4).
///
/// # Panics
///
/// Panics if `weights.len() != qi.len()`.
pub fn ec_loss_weighted(table: &Table, qi: &[usize], weights: &[f64], rows: &[RowId]) -> f64 {
    assert_eq!(qi.len(), weights.len(), "one weight per QI attribute");
    qi.iter()
        .zip(weights)
        .map(|(&a, &w)| w * attribute_loss(table, a, rows))
        .sum()
}

/// Information loss of an EC with the paper's default equal weights
/// `w_i = 1/d`.
pub fn ec_loss(table: &Table, qi: &[usize], rows: &[RowId]) -> f64 {
    if qi.is_empty() {
        return 0.0;
    }
    let w = 1.0 / qi.len() as f64;
    qi.iter().map(|&a| w * attribute_loss(table, a, rows)).sum()
}

/// Average information loss of a published partition (Equation 5):
/// `AIL = Σ_G |G| · IL(G) / |DB|`.
///
/// Returns 0 for an empty partition.
pub fn average_information_loss(table: &Table, partition: &Partition) -> f64 {
    let total: usize = partition.num_rows();
    if total == 0 {
        return 0.0;
    }
    let sum: f64 = partition
        .ecs()
        .iter()
        .map(|ec| ec.len() as f64 * ec_loss(table, partition.qi(), ec))
        .sum();
    sum / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, patients_table};

    const W: usize = patients::attr::WEIGHT;
    const A: usize = patients::attr::AGE;
    const D: usize = patients::attr::DISEASE;

    #[test]
    fn numeric_attribute_loss() {
        let t = patients_table();
        // Weights {70, 60, 50} span 20 of the 30-wide domain [50, 80].
        let il = attribute_loss(&t, W, &[0, 1, 2]);
        assert!((il - 20.0 / 30.0).abs() < 1e-12);
        // A single row loses nothing.
        assert_eq!(attribute_loss(&t, W, &[0]), 0.0);
        assert_eq!(attribute_loss(&t, W, &[]), 0.0);
    }

    #[test]
    fn categorical_attribute_loss() {
        let t = patients_table();
        // Rows 0..=2 carry the three nervous diseases: LCA covers 3 of 6
        // leaves.
        let il = attribute_loss(&t, D, &[0, 1, 2]);
        assert!((il - 0.5).abs() < 1e-12);
        // One disease: zero.
        assert_eq!(attribute_loss(&t, D, &[4]), 0.0);
        // Nervous + circulatory: the root, 6/6.
        assert!((attribute_loss(&t, D, &[0, 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ec_loss_averages_attributes() {
        let t = patients_table();
        let rows = [0, 1, 2];
        let weight_il = attribute_loss(&t, W, &rows);
        let age_il = attribute_loss(&t, A, &rows);
        let combined = ec_loss(&t, &[W, A], &rows);
        assert!((combined - 0.5 * (weight_il + age_il)).abs() < 1e-12);
        assert_eq!(ec_loss(&t, &[], &rows), 0.0);
    }

    #[test]
    fn weighted_loss_respects_weights() {
        let t = patients_table();
        let rows = [0, 1, 2];
        let only_weight = ec_loss_weighted(&t, &[W, A], &[1.0, 0.0], &rows);
        assert!((only_weight - attribute_loss(&t, W, &rows)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per QI attribute")]
    fn weighted_loss_arity_check() {
        let t = patients_table();
        ec_loss_weighted(&t, &[W, A], &[1.0], &[0]);
    }

    #[test]
    fn ail_is_size_weighted() {
        let t = patients_table();
        // Example-1-style split: two ECs of 3 tuples.
        let p = Partition::new(vec![W, A], D, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        let il0 = ec_loss(&t, &[W, A], &[0, 1, 2]);
        let il1 = ec_loss(&t, &[W, A], &[3, 4, 5]);
        let ail = average_information_loss(&t, &p);
        assert!((ail - (3.0 * il0 + 3.0 * il1) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_ec_partition_has_full_spread_loss() {
        let t = patients_table();
        let p = Partition::new(vec![W, A], D, vec![vec![0, 1, 2, 3, 4, 5]]);
        // The single EC spans the full weight and age extents present in the
        // data: weight [50,80] = full domain, age [40,70] = full domain.
        assert!((average_information_loss(&t, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_ecs_lose_less() {
        let t = patients_table();
        let coarse = Partition::new(vec![W, A], D, vec![vec![0, 1, 2, 3, 4, 5]]);
        let fine = Partition::new(vec![W, A], D, vec![vec![0, 3], vec![1, 5], vec![2, 4]]);
        assert!(
            average_information_loss(&t, &fine) < average_information_loss(&t, &coarse),
            "finer partitions must not lose more information"
        );
    }
}

//! Model-free privacy auditors.
//!
//! Given an original table and a published [`Partition`], these functions
//! measure what each predecessor privacy model would say about the
//! publication: the β actually achieved (max relative gain over all ECs),
//! the t-closeness (max/avg EMD), the ℓ-diversity (distinct and
//! inverse-max-frequency readings), and δ-disclosure. Figure 4 and the
//! Section 7 table of the paper are exactly such cross-model audits.

use crate::distance::{emd_equal, emd_ordered, max_relative_gain};
use crate::partition::Partition;
use betalike_microdata::{SaDistribution, Table};

/// Which ground distance the closeness audit uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosenessMetric {
    /// Unit distance between distinct values (EMD = total variation). The
    /// workspace default, matching t-closeness for categorical SAs.
    #[default]
    EqualDistance,
    /// `|i − j|/(m−1)` ground distance for ordinal domains.
    OrderedDistance,
}

impl ClosenessMetric {
    /// Distance between two frequency vectors under this metric.
    pub fn distance(self, p: &[f64], q: &[f64]) -> f64 {
        match self {
            ClosenessMetric::EqualDistance => emd_equal(p, q),
            ClosenessMetric::OrderedDistance => emd_ordered(p, q),
        }
    }
}

/// δ-disclosure reading of one EC against the table distribution:
/// `max_i |ln(q_i / p_i)|` over values with `p_i > 0`.
///
/// Returns `+∞` if any value present in the table is absent from the EC —
/// δ-disclosure-privacy strictly requires every SA value in every EC, one of
/// the rigidities Section 2 of the paper criticizes.
pub fn delta_disclosure(p: &SaDistribution, q: &SaDistribution) -> f64 {
    assert_eq!(p.m(), q.m(), "distributions over different domains");
    let mut worst: f64 = 0.0;
    for (pi, qi) in p.freqs().iter().zip(q.freqs()) {
        if *pi > 0.0 {
            if *qi <= 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max((qi / pi).ln().abs());
        }
    }
    worst
}

/// ℓ-diversity reading of an EC as the count of distinct SA values.
pub fn distinct_l(q: &SaDistribution) -> usize {
    q.support_size()
}

/// ℓ-diversity reading of an EC as `1 / max_i q_i` (an EC satisfies
/// "probabilistic" ℓ-diversity iff its most frequent value has frequency at
/// most `1/ℓ`). Returns 0 for an empty EC.
pub fn inverse_max_freq_l(q: &SaDistribution) -> f64 {
    let m = q.max_freq();
    if m > 0.0 {
        1.0 / m
    } else {
        0.0
    }
}

/// Everything Figure 4 and the Section 7 table report about a publication,
/// gathered in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionAudit {
    /// Max over ECs of the max relative gain — the "real β" of Figure 4.
    pub max_beta: f64,
    /// Average over ECs of their max relative gain.
    pub avg_beta: f64,
    /// Max over ECs of the EMD from the table distribution — the "t" column
    /// of the Section 7 table.
    pub max_closeness: f64,
    /// Size-unweighted average EMD — the "Avg t" column.
    pub avg_closeness: f64,
    /// Min over ECs of distinct SA values — the "ℓ" column.
    pub min_distinct_l: usize,
    /// Average distinct SA values — the "Avg ℓ" column.
    pub avg_distinct_l: f64,
    /// Min over ECs of `1/max q_i` (probabilistic ℓ-diversity).
    pub min_inv_max_freq_l: f64,
    /// Max over ECs of the δ-disclosure reading.
    pub max_delta: f64,
    /// Smallest EC (the incidental k-anonymity).
    pub min_ec_size: usize,
    /// Number of ECs.
    pub num_ecs: usize,
}

/// The "real β" of a publication: max over ECs of `max_i (q_i − p_i)/p_i`.
pub fn achieved_beta(table: &Table, partition: &Partition) -> f64 {
    let p = table.sa_distribution(partition.sa());
    partition
        .ec_distributions(table)
        .iter()
        .map(|q| max_relative_gain(p.freqs(), q.freqs()))
        .fold(0.0, f64::max)
}

/// The closeness of a publication under `metric`: `(max, avg)` over ECs.
pub fn achieved_closeness(
    table: &Table,
    partition: &Partition,
    metric: ClosenessMetric,
) -> (f64, f64) {
    let p = table.sa_distribution(partition.sa());
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let dists = partition.ec_distributions(table);
    for q in &dists {
        let d = metric.distance(p.freqs(), q.freqs());
        max = max.max(d);
        sum += d;
    }
    let avg = if dists.is_empty() {
        0.0
    } else {
        sum / dists.len() as f64
    };
    (max, avg)
}

/// The per-EC readings [`audit_partition`] reduces over.
struct EcAudit {
    beta: f64,
    closeness: f64,
    distinct_l: usize,
    inv_max_freq_l: f64,
    delta: f64,
    size: usize,
}

/// Runs the full audit in a single (parallel) pass over the ECs.
///
/// Per-EC readings are computed across the [`mini_rayon`] pool and reduced
/// in EC order, so the result — floating-point accumulations included — is
/// bit-identical to the serial pass at any thread count.
pub fn audit_partition(
    table: &Table,
    partition: &Partition,
    metric: ClosenessMetric,
) -> PartitionAudit {
    let p = table.sa_distribution(partition.sa());
    let mut out = PartitionAudit {
        max_beta: 0.0,
        avg_beta: 0.0,
        max_closeness: 0.0,
        avg_closeness: 0.0,
        min_distinct_l: usize::MAX,
        avg_distinct_l: 0.0,
        min_inv_max_freq_l: f64::INFINITY,
        max_delta: 0.0,
        min_ec_size: usize::MAX,
        num_ecs: partition.num_ecs(),
    };
    if partition.num_ecs() == 0 {
        out.min_distinct_l = 0;
        out.min_inv_max_freq_l = 0.0;
        out.min_ec_size = 0;
        return out;
    }
    let stats = mini_rayon::par_map(partition.ecs(), |ec| {
        let q = table.sa_distribution_of(partition.sa(), ec);
        EcAudit {
            beta: max_relative_gain(p.freqs(), q.freqs()),
            closeness: metric.distance(p.freqs(), q.freqs()),
            distinct_l: distinct_l(&q),
            inv_max_freq_l: inverse_max_freq_l(&q),
            delta: delta_disclosure(&p, &q),
            size: ec.len(),
        }
    });
    for s in &stats {
        out.max_beta = out.max_beta.max(s.beta);
        out.avg_beta += s.beta;
        out.max_closeness = out.max_closeness.max(s.closeness);
        out.avg_closeness += s.closeness;
        out.min_distinct_l = out.min_distinct_l.min(s.distinct_l);
        out.avg_distinct_l += s.distinct_l as f64;
        out.min_inv_max_freq_l = out.min_inv_max_freq_l.min(s.inv_max_freq_l);
        out.max_delta = out.max_delta.max(s.delta);
        out.min_ec_size = out.min_ec_size.min(s.size);
    }
    let n = partition.num_ecs() as f64;
    out.avg_beta /= n;
    out.avg_closeness /= n;
    out.avg_distinct_l /= n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, patients_table};

    fn nervous_split() -> (Table, Partition) {
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT, patients::attr::AGE],
            patients::attr::DISEASE,
            vec![vec![0, 1, 2], vec![3, 4, 5]],
        );
        (t, p)
    }

    #[test]
    fn achieved_beta_on_table1_split() {
        // P is uniform 1/6; each EC concentrates 3 values at 1/3 each:
        // relative gain (1/3 − 1/6)/(1/6) = 1.
        let (t, p) = nervous_split();
        let beta = achieved_beta(&t, &p);
        assert!((beta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn achieved_closeness_on_table1_split() {
        let (t, p) = nervous_split();
        let (max_t, avg_t) = achieved_closeness(&t, &p, ClosenessMetric::EqualDistance);
        // ½ (3·|1/3−1/6| + 3·|0−1/6|) = ½ (1/2 + 1/2) = 1/2 per EC.
        assert!((max_t - 0.5).abs() < 1e-12);
        assert!((avg_t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_ec_publication_is_perfectly_private() {
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT],
            patients::attr::DISEASE,
            vec![vec![0, 1, 2, 3, 4, 5]],
        );
        let audit = audit_partition(&t, &p, ClosenessMetric::EqualDistance);
        assert_eq!(audit.max_beta, 0.0);
        assert_eq!(audit.max_closeness, 0.0);
        assert_eq!(audit.min_distinct_l, 6);
        assert_eq!(audit.max_delta, 0.0);
        assert_eq!(audit.min_ec_size, 6);
        assert_eq!(audit.num_ecs, 1);
    }

    #[test]
    fn full_audit_on_table1_split() {
        let (t, p) = nervous_split();
        let audit = audit_partition(&t, &p, ClosenessMetric::EqualDistance);
        assert!((audit.max_beta - 1.0).abs() < 1e-12);
        assert!((audit.avg_beta - 1.0).abs() < 1e-12);
        assert_eq!(audit.min_distinct_l, 3);
        assert!((audit.avg_distinct_l - 3.0).abs() < 1e-12);
        // max q in each EC is 1/3, so probabilistic ℓ = 3.
        assert!((audit.min_inv_max_freq_l - 3.0).abs() < 1e-12);
        // Each EC misses 3 of 6 table values -> δ-disclosure infinite.
        assert_eq!(audit.max_delta, f64::INFINITY);
        assert_eq!(audit.min_ec_size, 3);
        assert_eq!(audit.num_ecs, 2);
    }

    #[test]
    fn audit_is_thread_count_invariant() {
        // Many small ECs so the parallel path actually chunks.
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT],
            patients::attr::DISEASE,
            (0..6).map(|r| vec![r]).collect(),
        );
        mini_rayon::set_threads(1);
        let serial = audit_partition(&t, &p, ClosenessMetric::EqualDistance);
        mini_rayon::set_threads(8);
        let parallel = audit_partition(&t, &p, ClosenessMetric::EqualDistance);
        mini_rayon::set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn delta_disclosure_finite_case() {
        let p = SaDistribution::from_counts(vec![2, 2]);
        let q = SaDistribution::from_counts(vec![3, 1]);
        // The dominant term is the *under*-represented value:
        // |ln(0.25/0.5)| = ln 2 > |ln(0.75/0.5)| = ln 1.5 — δ-disclosure
        // penalizes negative gain too, which β-likeness deliberately does
        // not (Section 3 of the paper).
        let d = delta_disclosure(&p, &q);
        assert!((d - 2.0f64.ln()).abs() < 1e-12);
        // A milder EC: counts (3, 2) -> freqs (0.6, 0.4);
        // max(|ln 1.2|, |ln 0.8|) = ln 1.25.
        let q2 = SaDistribution::from_counts(vec![3, 2]);
        assert!((delta_disclosure(&p, &q2) - 1.25f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn l_diversity_readings() {
        let q = SaDistribution::from_counts(vec![4, 1, 1, 0]);
        assert_eq!(distinct_l(&q), 3);
        assert!((inverse_max_freq_l(&q) - 1.5).abs() < 1e-12);
        let empty = SaDistribution::from_counts(vec![0, 0]);
        assert_eq!(inverse_max_freq_l(&empty), 0.0);
    }

    #[test]
    fn ordered_metric_differs_from_equal() {
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT],
            patients::attr::DISEASE,
            vec![vec![0, 1], vec![2, 3], vec![4, 5]],
        );
        let (eq_max, _) = achieved_closeness(&t, &p, ClosenessMetric::EqualDistance);
        let (ord_max, _) = achieved_closeness(&t, &p, ClosenessMetric::OrderedDistance);
        assert!(ord_max <= eq_max + 1e-12);
        assert!(ord_max > 0.0);
    }
}

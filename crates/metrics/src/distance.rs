//! Distribution distances.
//!
//! These are the cumulative-difference measures that Section 2 of the paper
//! argues are *insufficient* privacy criteria — we implement them both to
//! drive the t-closeness baselines (tMondrian, SABRE) and to reproduce the
//! paper's numerical arguments (the `0.1-closeness` example, the K-L/J-S
//! counterexample).
//!
//! All functions take frequency slices (`Σ = 1` for non-degenerate input)
//! and are symmetric in domain: the two slices must have equal length.

/// Equal-distance Earth Mover's Distance between two distributions over the
/// same categorical domain: with unit ground distance between any two
/// distinct values, EMD reduces to total variation, `½ Σ |p_i − q_i|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn emd_equal(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions over different domains");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Ordered-distance Earth Mover's Distance for ordinal domains (the variant
/// the t-closeness paper uses for numeric SAs): with ground distance
/// `|i − j| / (m − 1)`, EMD equals `Σ_i |Σ_{j ≤ i} (p_j − q_j)| / (m − 1)`.
///
/// Returns 0 for singleton domains.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn emd_ordered(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions over different domains");
    assert!(!p.is_empty(), "empty domain");
    if p.len() == 1 {
        return 0.0;
    }
    let mut cum = 0.0;
    let mut total = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        cum += a - b;
        total += cum.abs();
    }
    // The final cumulative term is ~0 for proper distributions and is
    // included by the formula; dividing by (m-1) normalizes to [0, 1].
    (total - cum.abs()) / (p.len() - 1) as f64
}

/// Kullback–Leibler divergence `KL(q ‖ p) = Σ q_i ln(q_i / p_i)` in nats.
///
/// Terms with `q_i = 0` contribute 0; a term with `q_i > 0, p_i = 0` makes
/// the divergence infinite.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence(q: &[f64], p: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions over different domains");
    let mut sum = 0.0;
    for (&qi, &pi) in q.iter().zip(p) {
        if qi > 0.0 {
            if pi <= 0.0 {
                return f64::INFINITY;
            }
            sum += qi * (qi / pi).ln();
        }
    }
    sum
}

/// Jensen–Shannon divergence in nats: `½ KL(p ‖ m) + ½ KL(q ‖ m)` with
/// `m = (p + q)/2`. Always finite and symmetric, bounded by `ln 2`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions over different domains");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Maximum relative gain `max_i (q_i − p_i) / p_i` over values with
/// `q_i > p_i` — the quantity β-likeness bounds.
///
/// Returns 0 when no value gains; `+∞` if some `q_i > 0` has `p_i = 0`
/// (a value absent from the original table appearing in an EC).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_relative_gain(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions over different domains");
    let mut worst: f64 = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if qi > pi {
            if pi <= 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max((qi - pi) / pi);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn emd_equal_paper_example() {
        // Section 2: P=(0.4,0.6) vs Q=(0.5,0.5) and P'=(0.01,0.99) vs
        // Q'=(0.11,0.89) both have EMD 0.1 — yet wildly different relative
        // gains. This is the paper's core argument against t-closeness.
        let p = [0.4, 0.6];
        let q = [0.5, 0.5];
        let p2 = [0.01, 0.99];
        let q2 = [0.11, 0.89];
        assert!((emd_equal(&p, &q) - 0.1).abs() < EPS);
        assert!((emd_equal(&p2, &q2) - 0.1).abs() < EPS);
        // Relative gain differs by a factor 40: 25% vs 1000%.
        assert!((max_relative_gain(&p, &q) - 0.25).abs() < EPS);
        assert!((max_relative_gain(&p2, &q2) - 10.0).abs() < EPS);
    }

    #[test]
    fn kl_js_paper_example() {
        // Section 2: K-L(J-S) rank the 25%-gain case as *less* private than
        // the 200%-gain case — the paper's argument that divergences miss
        // relative gains. The paper reports KL(P‖Q) 0.0290 vs 0.0133 and
        // JS 0.0073 vs 0.0038, in bits (log base 2); our functions use nats,
        // so we convert.
        const LN2: f64 = std::f64::consts::LN_2;
        let p = [0.4, 0.6];
        let q = [0.5, 0.5];
        let pt = [0.01, 0.99];
        let qt = [0.03, 0.97];
        let kl1 = kl_divergence(&p, &q) / LN2;
        let kl2 = kl_divergence(&pt, &qt) / LN2;
        assert!((kl1 - 0.0290).abs() < 5e-4, "kl1 = {kl1}");
        assert!((kl2 - 0.0133).abs() < 5e-4, "kl2 = {kl2}");
        assert!(kl1 > kl2);
        let js1 = js_divergence(&p, &q) / LN2;
        let js2 = js_divergence(&pt, &qt) / LN2;
        assert!((js1 - 0.0073).abs() < 5e-4, "js1 = {js1}");
        assert!((js2 - 0.0038).abs() < 5e-4, "js2 = {js2}");
        assert!(js1 > js2);
        // ...but the relative gain ranks them the other way around: the
        // HIV-confidence rises 200% in the second case, 25% in the first.
        assert!(max_relative_gain(&pt, &qt) > max_relative_gain(&p, &q));
        assert!((max_relative_gain(&pt, &qt) - 2.0).abs() < EPS);
        assert!((max_relative_gain(&p, &q) - 0.25).abs() < EPS);
    }

    #[test]
    fn emd_identical_distributions_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(emd_equal(&p, &p), 0.0);
        assert!(emd_ordered(&p, &p).abs() < EPS);
        assert!(js_divergence(&p, &p).abs() < EPS);
        assert!(kl_divergence(&p, &p).abs() < EPS);
        assert_eq!(max_relative_gain(&p, &p), 0.0);
    }

    #[test]
    fn emd_ordered_weighs_displacement() {
        // Moving mass one step vs across the domain.
        let p = [1.0, 0.0, 0.0];
        let near = [0.0, 1.0, 0.0];
        let far = [0.0, 0.0, 1.0];
        let d_near = emd_ordered(&p, &near);
        let d_far = emd_ordered(&p, &far);
        assert!((d_near - 0.5).abs() < EPS);
        assert!((d_far - 1.0).abs() < EPS);
        // Equal-distance EMD cannot tell them apart.
        assert!((emd_equal(&p, &near) - emd_equal(&p, &far)).abs() < EPS);
    }

    #[test]
    fn emd_ordered_upper_bounded_by_equal() {
        // |cum_i| <= ½ L1 for all i, so ordered EMD <= equal EMD; the SABRE
        // baseline relies on this to transfer guarantees.
        let cases: [(&[f64], &[f64]); 3] = [
            (&[0.2, 0.3, 0.5], &[0.5, 0.3, 0.2]),
            (&[0.1, 0.1, 0.1, 0.7], &[0.25, 0.25, 0.25, 0.25]),
            (&[0.0, 1.0], &[1.0, 0.0]),
        ];
        for (p, q) in cases {
            assert!(emd_ordered(p, q) <= emd_equal(p, q) + EPS);
        }
    }

    #[test]
    fn singleton_domain() {
        assert_eq!(emd_ordered(&[1.0], &[1.0]), 0.0);
        assert_eq!(emd_equal(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn kl_infinite_off_support() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
        // JS stays finite even off-support.
        assert!(js_divergence(&[1.0, 0.0], &[0.0, 1.0]).is_finite());
        assert!((js_divergence(&[1.0, 0.0], &[0.0, 1.0]) - (2.0f64).ln()).abs() < EPS);
    }

    #[test]
    fn max_relative_gain_off_support_is_infinite() {
        assert_eq!(max_relative_gain(&[0.0, 1.0], &[0.5, 0.5]), f64::INFINITY);
        // Losing mass is not a (positive) gain: only the second value gains,
        // by (0.5 − 0.4)/0.4 = 25%.
        assert!((max_relative_gain(&[0.6, 0.4], &[0.5, 0.5]) - 0.25).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn mismatched_domains_panic() {
        emd_equal(&[1.0], &[0.5, 0.5]);
    }
}

//! Publishing a table as a set of equivalence classes.
//!
//! A [`Partition`] records which rows of an original table form each EC,
//! plus the QI attribute set and the SA index the publication refers to.
//! The generalized form of an EC (one code range per QI attribute — a value
//! interval for numeric attributes, a hierarchy subtree for categorical
//! ones) is derived on demand from the original table; storing row ids keeps
//! the type cheap and lets auditors access exact values.

use betalike_microdata::{RowId, SaDistribution, Table, Value};

/// A full-cover, disjoint grouping of a table's rows into equivalence
/// classes, as produced by generalization-based anonymizers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    qi: Vec<usize>,
    sa: usize,
    ecs: Vec<Vec<RowId>>,
}

impl Partition {
    /// Creates a partition from EC row lists.
    ///
    /// # Panics
    ///
    /// Panics if any EC is empty or `qi` contains `sa` — both are
    /// construction bugs in an anonymizer, not runtime conditions.
    pub fn new(qi: Vec<usize>, sa: usize, ecs: Vec<Vec<RowId>>) -> Self {
        assert!(
            ecs.iter().all(|ec| !ec.is_empty()),
            "partitions must not contain empty ECs"
        );
        assert!(!qi.contains(&sa), "the SA cannot be part of the QI set");
        Partition { qi, sa, ecs }
    }

    /// QI attribute indices this publication generalizes.
    #[inline]
    pub fn qi(&self) -> &[usize] {
        &self.qi
    }

    /// Sensitive-attribute index.
    #[inline]
    pub fn sa(&self) -> usize {
        self.sa
    }

    /// The equivalence classes (row-id lists).
    #[inline]
    pub fn ecs(&self) -> &[Vec<RowId>] {
        &self.ecs
    }

    /// Number of equivalence classes.
    #[inline]
    pub fn num_ecs(&self) -> usize {
        self.ecs.len()
    }

    /// Total number of rows across all ECs.
    pub fn num_rows(&self) -> usize {
        self.ecs.iter().map(Vec::len).sum()
    }

    /// Size of the smallest EC (the k of k-anonymity the publication
    /// incidentally provides). `None` for an empty partition.
    pub fn min_ec_size(&self) -> Option<usize> {
        self.ecs.iter().map(Vec::len).min()
    }

    /// Checks that every row in `0..n_rows` occurs in exactly one EC.
    ///
    /// # Errors
    ///
    /// Describes the first violation found (duplicate, out-of-range, or
    /// missing row).
    pub fn validate_cover(&self, n_rows: usize) -> Result<(), String> {
        let mut seen = vec![false; n_rows];
        for (i, ec) in self.ecs.iter().enumerate() {
            for &r in ec {
                if r >= n_rows {
                    return Err(format!("EC {i} references row {r} >= {n_rows}"));
                }
                if seen[r] {
                    return Err(format!("row {r} occurs in more than one EC"));
                }
                seen[r] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("row {missing} is not covered by any EC"));
        }
        Ok(())
    }

    /// The generalized QI extent of one EC: `(lo, hi)` code per QI
    /// attribute, in `self.qi()` order.
    ///
    /// # Panics
    ///
    /// Panics if `ec` is out of bounds (ECs are never empty by
    /// construction).
    pub fn ec_extent(&self, table: &Table, ec: usize) -> Vec<(Value, Value)> {
        self.qi
            .iter()
            .map(|&a| {
                table
                    .code_extent(a, &self.ecs[ec])
                    .expect("ECs are non-empty by construction")
            })
            .collect()
    }

    /// SA histogram of one EC.
    pub fn ec_distribution(&self, table: &Table, ec: usize) -> SaDistribution {
        table.sa_distribution_of(self.sa, &self.ecs[ec])
    }

    /// SA histograms of every EC.
    pub fn ec_distributions(&self, table: &Table) -> Vec<SaDistribution> {
        (0..self.ecs.len())
            .map(|i| self.ec_distribution(table, i))
            .collect()
    }

    /// Merges EC `src` into EC `dst` and removes `src`.
    ///
    /// Used by enforcement passes (e.g. the SABRE baseline's final merge
    /// step); by the monotonicity property (Lemma 1 of the paper) merging
    /// can only shrink the β achieved by the merged class.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either index is out of bounds.
    pub fn merge_ecs(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "cannot merge an EC into itself");
        let moved = std::mem::take(&mut self.ecs[src]);
        self.ecs[dst].extend(moved);
        self.ecs.swap_remove(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, patients_table};

    fn two_ec_partition() -> Partition {
        // The 3-diverse example of Section 2: G1 = first three tuples,
        // G2 = the rest.
        Partition::new(
            vec![patients::attr::WEIGHT, patients::attr::AGE],
            patients::attr::DISEASE,
            vec![vec![0, 1, 2], vec![3, 4, 5]],
        )
    }

    #[test]
    fn cover_validation() {
        let p = two_ec_partition();
        assert!(p.validate_cover(6).is_ok());
        assert!(p.validate_cover(7).unwrap_err().contains("not covered"));
        let dup = Partition::new(vec![0], 2, vec![vec![0, 1], vec![1]]);
        assert!(dup.validate_cover(2).unwrap_err().contains("more than one"));
        let oob = Partition::new(vec![0], 2, vec![vec![5]]);
        assert!(oob.validate_cover(2).unwrap_err().contains(">="));
    }

    #[test]
    #[should_panic(expected = "empty ECs")]
    fn empty_ec_rejected() {
        Partition::new(vec![0], 2, vec![vec![0], vec![]]);
    }

    #[test]
    #[should_panic(expected = "SA cannot be part")]
    fn sa_in_qi_rejected() {
        Partition::new(vec![0, 2], 2, vec![vec![0]]);
    }

    #[test]
    fn extents_and_distributions() {
        let t = patients_table();
        let p = two_ec_partition();
        // G1 = rows {0,1,2}: weights {70,60,50} -> codes (0,20); ages
        // {40,60,50} -> codes (0,20).
        let ext = p.ec_extent(&t, 0);
        assert_eq!(ext.len(), 2);
        let w = t.schema().attr(0);
        assert_eq!(w.numeric_value(ext[0].0), Some(50.0));
        assert_eq!(w.numeric_value(ext[0].1), Some(70.0));
        let d = p.ec_distribution(&t, 0);
        // G1 holds headache, epilepsy, brain tumors: codes 0..=2.
        assert_eq!(d.counts(), &[1, 1, 1, 0, 0, 0]);
        assert_eq!(p.ec_distributions(&t).len(), 2);
    }

    #[test]
    fn sizes() {
        let p = two_ec_partition();
        assert_eq!(p.num_ecs(), 2);
        assert_eq!(p.num_rows(), 6);
        assert_eq!(p.min_ec_size(), Some(3));
    }

    #[test]
    fn merge_ecs_moves_rows() {
        let mut p = Partition::new(vec![0], 2, vec![vec![0], vec![1, 2], vec![3]]);
        p.merge_ecs(0, 1);
        assert_eq!(p.num_ecs(), 2);
        assert_eq!(p.num_rows(), 4);
        assert!(p.ecs()[0].contains(&2));
        assert!(p.validate_cover(4).is_ok());
    }
}

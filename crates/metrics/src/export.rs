//! Rendering a generalized publication the way a recipient receives it.
//!
//! A generalization-based release ships one row per tuple: generalized QI
//! values (a range for numeric attributes, a hierarchy-node label for
//! categorical ones) plus the exact SA value. This module renders a
//! [`Partition`] in that form — as display strings or as CSV — which is
//! also what the paper's Table 1/Example 1 pictures show.

use crate::partition::Partition;
use betalike_microdata::{AttrKind, Table};
use std::io::{BufWriter, Write};

/// The published (generalized) value of attribute `attr` for EC `ec`.
///
/// Numeric attributes render as `lo~hi` (or the single value); categorical
/// attributes render as the label of the LCA their extent generalizes to.
pub fn generalized_label(table: &Table, partition: &Partition, ec: usize, attr: usize) -> String {
    let pos = partition
        .qi()
        .iter()
        .position(|&a| a == attr)
        .expect("attribute must be in the QI set");
    let (lo, hi) = partition.ec_extent(table, ec)[pos];
    let a = table.schema().attr(attr);
    match a.kind() {
        AttrKind::Numeric { .. } => {
            if lo == hi {
                a.label(lo)
            } else {
                format!("{}~{}", a.label(lo), a.label(hi))
            }
        }
        AttrKind::Categorical { hierarchy } => {
            let lca = hierarchy.lca_of_leaves(lo, hi);
            hierarchy.label(lca).to_string()
        }
    }
}

/// Writes the publication as CSV: header `ec,<QI names...>,<SA name>`, one
/// row per tuple, with generalized QI values and exact SA labels.
///
/// # Errors
///
/// Propagates I/O failures (stringified).
pub fn write_generalized_csv(
    table: &Table,
    partition: &Partition,
    sink: impl Write,
) -> std::io::Result<()> {
    let mut out = BufWriter::new(sink);
    write!(out, "ec")?;
    for &a in partition.qi() {
        write!(out, ",{}", table.schema().attr(a).name())?;
    }
    writeln!(out, ",{}", table.schema().attr(partition.sa()).name())?;

    for ec in 0..partition.num_ecs() {
        // Render the EC's generalized QI values once.
        let qi_cells: Vec<String> = partition
            .qi()
            .iter()
            .map(|&a| generalized_label(table, partition, ec, a))
            .collect();
        for &row in &partition.ecs()[ec] {
            write!(out, "{ec}")?;
            for cell in &qi_cells {
                write!(out, ",{cell}")?;
            }
            writeln!(
                out,
                ",{}",
                table
                    .schema()
                    .attr(partition.sa())
                    .label(table.value(row, partition.sa()))
            )?;
        }
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, patients_table};

    fn split() -> (Table, Partition) {
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT, patients::attr::AGE],
            patients::attr::DISEASE,
            vec![vec![0, 1, 2], vec![3, 4, 5]],
        );
        (t, p)
    }

    #[test]
    fn numeric_labels_render_ranges() {
        let (t, p) = split();
        // EC 0 holds weights {70, 60, 50} and ages {40, 60, 50}.
        assert_eq!(
            generalized_label(&t, &p, 0, patients::attr::WEIGHT),
            "50~70"
        );
        assert_eq!(generalized_label(&t, &p, 0, patients::attr::AGE), "40~60");
    }

    #[test]
    fn categorical_labels_render_lca() {
        let t = patients_table();
        // Use Disease as a QI for rendering purposes.
        let p = Partition::new(
            vec![patients::attr::DISEASE],
            patients::attr::WEIGHT,
            vec![vec![0, 1, 2], vec![3, 4, 5]],
        );
        assert_eq!(
            generalized_label(&t, &p, 0, patients::attr::DISEASE),
            "nervous diseases"
        );
        assert_eq!(
            generalized_label(&t, &p, 1, patients::attr::DISEASE),
            "circulatory diseases"
        );
        // A single-value EC renders the leaf itself.
        let single = Partition::new(
            vec![patients::attr::DISEASE],
            patients::attr::WEIGHT,
            vec![vec![0], vec![1, 2, 3, 4, 5]],
        );
        assert_eq!(
            generalized_label(&t, &single, 0, patients::attr::DISEASE),
            "headache"
        );
    }

    #[test]
    fn csv_rendering() {
        let (t, p) = split();
        let mut buf = Vec::new();
        write_generalized_csv(&t, &p, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ec,Weight,Age,Disease");
        assert_eq!(lines.len(), 7, "header + six tuples");
        // Every tuple of EC 0 shares the generalized QI but keeps its own
        // disease.
        assert_eq!(lines[1], "0,50~70,40~60,headache");
        assert_eq!(lines[2], "0,50~70,40~60,epilepsy");
        assert!(lines[4].starts_with("1,"));
    }
}

//! # betalike-metrics
//!
//! Publication forms and evaluation machinery for the `betalike` workspace:
//!
//! * [`partition`] — the [`Partition`] type: a table published as a set of
//!   equivalence classes (ECs) with generalized QI extents.
//! * [`loss`] — the information-loss metrics of Section 4.1 of the paper:
//!   per-attribute loss (Equations 2–3), per-EC loss (Equation 4) and
//!   table-level average information loss *AIL* (Equation 5).
//! * [`distance`] — distribution distances: equal-distance EMD (total
//!   variation), ordered EMD, Kullback–Leibler and Jensen–Shannon
//!   divergences, used both by the t-closeness baselines and by the
//!   Section 2 arguments contrasting cumulative and relative measures.
//! * [`audit`] — model-free privacy auditors: the β, t, ℓ and δ actually
//!   *achieved* by a partition, as reported in Figure 4 and the Section 7
//!   table of the paper.
//!
//! The crate measures; it never anonymizes. The same auditors evaluate our
//! algorithms and the baselines, so comparisons are apples-to-apples.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod audit;
pub mod distance;
pub mod export;
pub mod loss;
pub mod partition;

pub use audit::PartitionAudit;
pub use partition::Partition;

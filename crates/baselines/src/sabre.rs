//! A SABRE-style t-closeness anonymizer (Cao, Karras, Kalnis, Tan:
//! *SABRE: a Sensitive Attribute Bucketization and REdistribution framework
//! for t-closeness*, VLDB Journal 2011).
//!
//! The original SABRE is the t-closeness ancestor of BUREL and the paper's
//! strongest generalization baseline (Figure 4). We reimplement it in the
//! same two-phase framework:
//!
//! 1. **Bucketization.** SA values (ascending frequency) are greedily
//!    grouped into buckets. A bucket containing values `V_j` with total
//!    frequency `P_j` and minimum frequency `p^j_min` has *slack*
//!    `P_j − p^j_min`: the worst-case contribution to equal-distance EMD
//!    when an EC's draw from the bucket is adversarially concentrated on
//!    one value. Buckets are grown while the total slack stays within a
//!    fraction `η` of the EMD budget `t` (the rest of the budget absorbs
//!    share rounding during reallocation).
//! 2. **Redistribution.** The same ECTree as BUREL, with an EMD-budget
//!    eligibility condition: an EC drawing `x_j` tuples from bucket `j` is
//!    admissible iff its *worst-case* equal-distance EMD,
//!    `½ Σ_j worst_j(x_j/|G|)`, stays ≤ t, where
//!    `worst_j(s) = s + P_j − 2·min(s, p^j_min)` for `s > 0` and `P_j` for
//!    `s = 0` (concentration on the least frequent value is the worst
//!    placement by convexity).
//!
//! Because the eligibility bound covers *any* in-bucket composition, the
//! SA-indifferent Hilbert materialization inherited from BUREL yields ECs
//! that provably satisfy t-closeness under equal-distance EMD (and hence
//! under ordered EMD, which it upper-bounds).

use betalike::ectree::{bi_split, Eligibility};
use betalike::error::{Error, Result};
use betalike::retrieve::{hilbert_keys, FillStrategy, Materializer, SeedChoice};
use betalike_metrics::audit::ClosenessMetric;
use betalike_metrics::Partition;
use betalike_microdata::{RowId, SaDistribution, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`sabre`].
#[derive(Debug, Clone)]
pub struct SabreConfig {
    /// The t-closeness threshold (equal-distance EMD), `0 < t ≤ 1`.
    pub t: f64,
    /// Fraction of the budget granted to within-bucket slack during
    /// bucketization (the remainder absorbs reallocation rounding).
    pub slack_fraction: f64,
    /// RNG seed for EC seeding.
    pub seed: u64,
    /// Verify every output EC against the exact EMD before returning.
    pub verify_output: bool,
}

impl SabreConfig {
    /// Defaults: `η = 0.5`, verification on.
    pub fn new(t: f64) -> Self {
        SabreConfig {
            t,
            slack_fraction: 0.5,
            seed: 42,
            verify_output: true,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Shared input validation of [`sabre`] / [`sabre_with_keys`].
fn validate(table: &Table, qi: &[usize], sa: usize, cfg: &SabreConfig) -> Result<()> {
    if !(cfg.t > 0.0 && cfg.t <= 1.0 && cfg.t.is_finite()) {
        return Err(Error::BadBeta(cfg.t)); // reuse the "bad threshold" variant
    }
    let arity = table.schema().arity();
    if sa >= arity {
        return Err(Error::BadSa { index: sa, arity });
    }
    if qi.is_empty() || qi.contains(&sa) || qi.iter().any(|&a| a >= arity) {
        return Err(Error::BadQi("invalid QI set".into()));
    }
    if table.is_empty() {
        return Err(Error::EmptyTable);
    }
    Ok(())
}

/// A bucket of SA values with its EMD bookkeeping.
#[derive(Debug, Clone)]
struct EmdBucket {
    values: Vec<u32>,
    count: u64,
    /// Total table frequency `P_j`.
    freq_sum: f64,
    /// Minimum member frequency `p^j_min`.
    min_freq: f64,
}

/// Greedy slack-bounded bucketization over ascending-frequency values.
fn bucketize(dist: &SaDistribution, t: f64, eta: f64) -> Vec<EmdBucket> {
    let values = dist.values_by_ascending_freq();
    let budget = eta * t;
    let mut buckets: Vec<EmdBucket> = Vec::new();
    let mut used_slack = 0.0;
    for v in values {
        let p = dist.freq(v);
        let n = dist.count(v);
        if let Some(last) = buckets.last_mut() {
            // Adding v to the last bucket raises its slack from
            // (P_j − min) to (P_j + p − min): an increase of p.
            let new_slack = last.freq_sum + p - last.min_freq;
            let old_slack = last.freq_sum - last.min_freq;
            if used_slack - old_slack + new_slack <= budget {
                used_slack += new_slack - old_slack;
                last.values.push(v);
                last.count += n;
                last.freq_sum += p;
                last.min_freq = last.min_freq.min(p);
                continue;
            }
        }
        buckets.push(EmdBucket {
            values: vec![v],
            count: n,
            freq_sum: p,
            min_freq: p,
        });
    }
    buckets
}

/// The EMD-budget eligibility condition (see module docs).
#[derive(Debug, Clone)]
struct EmdEligibility {
    t: f64,
    freq_sums: Vec<f64>,
    min_freqs: Vec<f64>,
}

impl EmdEligibility {
    fn worst_emd(&self, counts: &[u64]) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::INFINITY;
        }
        let g = total as f64;
        let mut acc = 0.0;
        for ((&x, &pj), &pmin) in counts.iter().zip(&self.freq_sums).zip(&self.min_freqs) {
            let s = x as f64 / g;
            if x == 0 {
                acc += pj;
            } else {
                acc += s + pj - 2.0 * s.min(pmin);
            }
        }
        0.5 * acc
    }
}

impl Eligibility for EmdEligibility {
    fn eligible(&self, counts: &[u64]) -> bool {
        self.worst_emd(counts) <= self.t
    }
}

/// Runs the SABRE-style algorithm; the output satisfies t-closeness under
/// equal-distance EMD.
///
/// # Errors
///
/// Standard input validation errors, plus [`Error::RootNotEligible`] if the
/// bucketization consumed more than the available budget (cannot happen for
/// `slack_fraction < 1`).
pub fn sabre(table: &Table, qi: &[usize], sa: usize, cfg: &SabreConfig) -> Result<Partition> {
    validate(table, qi, sa, cfg)?;
    let keys = hilbert_keys(table, qi);
    sabre_with_keys(table, qi, sa, cfg, &keys)
}

/// Like [`sabre`], with the per-row Hilbert keys precomputed by
/// [`hilbert_keys`] for this exact `(table, qi)` pair.
///
/// BUREL and SABRE share the same QI geometry; comparison runs over one
/// table should compute the keys once (see `bench::algos::QiGeometry`)
/// instead of paying the Hilbert transform in each algorithm.
///
/// # Errors
///
/// As [`sabre`].
///
/// # Panics
///
/// Panics if `keys.len() != table.num_rows()`.
pub fn sabre_with_keys(
    table: &Table,
    qi: &[usize],
    sa: usize,
    cfg: &SabreConfig,
    keys: &[u128],
) -> Result<Partition> {
    validate(table, qi, sa, cfg)?;
    assert_eq!(
        keys.len(),
        table.num_rows(),
        "precomputed Hilbert keys must cover every row"
    );
    let dist = table.sa_distribution(sa);
    let buckets = bucketize(&dist, cfg.t, cfg.slack_fraction.clamp(0.0, 1.0));

    let sizes: Vec<u64> = buckets.iter().map(|b| b.count).collect();
    let eligibility = EmdEligibility {
        t: cfg.t,
        freq_sums: buckets.iter().map(|b| b.freq_sum).collect(),
        min_freqs: buckets.iter().map(|b| b.min_freq).collect(),
    };
    let templates = bi_split(&sizes, &eligibility).ok_or(Error::RootNotEligible)?;

    // Materialize with the shared Hilbert machinery.
    let card = table.schema().attr(sa).cardinality();
    let mut value_bucket = vec![usize::MAX; card];
    for (j, b) in buckets.iter().enumerate() {
        for &v in &b.values {
            value_bucket[v as usize] = j;
        }
    }
    let mut bucket_rows: Vec<Vec<RowId>> = vec![Vec::new(); buckets.len()];
    for (r, &v) in table.column(sa).iter().enumerate() {
        bucket_rows[value_bucket[v as usize]].push(r);
    }
    let mut mat = Materializer::with_seed_choice(
        keys,
        &bucket_rows,
        FillStrategy::HilbertNearest,
        SeedChoice::Random,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let ecs: Vec<Vec<RowId>> = templates
        .iter()
        .map(|t| mat.fill(&t.counts, &mut rng))
        .collect();
    let partition = Partition::new(qi.to_vec(), sa, ecs);

    if cfg.verify_output {
        let metric = ClosenessMetric::EqualDistance;
        for i in 0..partition.num_ecs() {
            let q = partition.ec_distribution(table, i);
            let d = metric.distance(dist.freqs(), q.freqs());
            if d > cfg.t + 1e-12 {
                // The worst-case bound makes this unreachable; surface it
                // loudly if the invariant is ever broken.
                return Err(Error::BadQi(format!(
                    "internal: EC {i} has EMD {d} > t = {}",
                    cfg.t
                )));
            }
        }
    }
    Ok(partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_metrics::audit::achieved_closeness;
    use betalike_metrics::loss::average_information_loss;
    use betalike_microdata::census::{self, CensusConfig};
    use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};

    #[test]
    fn bucketize_respects_slack_budget() {
        let dist = SaDistribution::from_counts(vec![5, 10, 15, 20, 25, 25]);
        for t in [0.05, 0.2, 0.5] {
            let buckets = bucketize(&dist, t, 0.5);
            let slack: f64 = buckets.iter().map(|b| b.freq_sum - b.min_freq).sum();
            assert!(slack <= 0.5 * t + 1e-12, "t = {t}: slack {slack}");
            let total: u64 = buckets.iter().map(|b| b.count).sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn tighter_t_means_more_buckets() {
        let dist = SaDistribution::from_counts(vec![10; 10]);
        let loose = bucketize(&dist, 0.5, 0.5);
        let tight = bucketize(&dist, 0.05, 0.5);
        assert!(tight.len() >= loose.len());
    }

    #[test]
    fn worst_emd_formula() {
        // One bucket, all values equal frequency: drawing proportionally
        // the worst case concentrates on one value.
        let e = EmdEligibility {
            t: 1.0,
            freq_sums: vec![1.0],
            min_freqs: vec![0.25],
        };
        // EC draws everything: s = 1, worst = ½(1 + 1 − 2·0.25) = 0.75.
        assert!((e.worst_emd(&[4]) - 0.75).abs() < 1e-12);
        // Empty EC is infinitely bad.
        assert_eq!(e.worst_emd(&[0]), f64::INFINITY);
    }

    #[test]
    fn output_satisfies_t_closeness() {
        let t = random_table(&SyntheticConfig {
            rows: 3_000,
            qi_attrs: 2,
            sa_cardinality: 10,
            sa_shape: SaShape::Zipf(1.0),
            seed: 12,
            ..Default::default()
        });
        for thr in [0.1, 0.2, 0.4] {
            let p = sabre(&t, &[0, 1], 2, &SabreConfig::new(thr)).unwrap();
            assert!(p.validate_cover(3_000).is_ok());
            let (max_t, _) = achieved_closeness(&t, &p, ClosenessMetric::EqualDistance);
            assert!(max_t <= thr + 1e-9, "t = {thr}: achieved {max_t}");
        }
    }

    #[test]
    fn looser_t_means_lower_loss() {
        let t = census::generate(&CensusConfig::new(4_000, 31));
        let qi = [0, 2];
        let tight = sabre(&t, &qi, 5, &SabreConfig::new(0.05)).unwrap();
        let loose = sabre(&t, &qi, 5, &SabreConfig::new(0.4)).unwrap();
        let ail_tight = average_information_loss(&t, &tight);
        let ail_loose = average_information_loss(&t, &loose);
        assert!(
            ail_loose <= ail_tight + 1e-9,
            "loose {ail_loose} vs tight {ail_tight}"
        );
    }

    #[test]
    fn input_validation() {
        let t = random_table(&SyntheticConfig::default());
        assert!(sabre(&t, &[0, 1], 2, &SabreConfig::new(0.0)).is_err());
        assert!(sabre(&t, &[0, 1], 2, &SabreConfig::new(f64::NAN)).is_err());
        assert!(sabre(&t, &[], 2, &SabreConfig::new(0.1)).is_err());
        assert!(sabre(&t, &[0, 2], 2, &SabreConfig::new(0.1)).is_err());
        assert!(sabre(&t, &[0], 9, &SabreConfig::new(0.1)).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let t = random_table(&SyntheticConfig {
            rows: 500,
            seed: 2,
            ..Default::default()
        });
        let a = sabre(&t, &[0, 1], 2, &SabreConfig::new(0.2)).unwrap();
        let b = sabre(&t, &[0, 1], 2, &SabreConfig::new(0.2)).unwrap();
        assert_eq!(a.ecs(), b.ecs());
    }

    #[test]
    fn precomputed_keys_match_recomputed() {
        let t = random_table(&SyntheticConfig {
            rows: 800,
            seed: 5,
            ..Default::default()
        });
        let keys = hilbert_keys(&t, &[0, 1]);
        let direct = sabre(&t, &[0, 1], 2, &SabreConfig::new(0.2)).unwrap();
        let shared = sabre_with_keys(&t, &[0, 1], 2, &SabreConfig::new(0.2), &keys).unwrap();
        assert_eq!(direct.ecs(), shared.ecs());
    }
}

//! Mondrian multidimensional partitioning (LeFevre et al., ICDE 2006),
//! generic over the privacy condition that admissible partitions must
//! satisfy.
//!
//! Mondrian greedily bisects the QI space: at each node it tries the
//! dimensions in order of decreasing normalized extent, splits the rows at
//! the median of the chosen dimension, and recurses if **both** halves
//! satisfy the [`SplitConstraint`]. When no dimension yields an admissible
//! split, the node becomes an equivalence class.
//!
//! The paper (and [3, 20, 22] before it) adapts exactly this scheme to
//! β-likeness, δ-disclosure and t-closeness by swapping the constraint —
//! the "conventional wisdom" BUREL is evaluated against in Figures 5–8.

use betalike_metrics::Partition;
use betalike_microdata::{RowId, Table};

use betalike::error::{Error, Result};

/// The admissibility condition Mondrian checks on every candidate class.
pub trait SplitConstraint {
    /// Whether a (candidate) EC over `rows` may be published.
    fn acceptable(&self, table: &Table, sa: usize, rows: &[RowId]) -> bool;
}

/// How Mondrian reacts when the chosen dimension's median split violates
/// the constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DimPolicy {
    /// Only the widest dimension is tried; if its median split is
    /// inadmissible, the node becomes an EC. This is LeFevre's original
    /// "choose_dimension" behaviour and matches how prior work adapted
    /// Mondrian to distribution-based models (the adaptations the paper
    /// compares against in Figures 5–8). The default.
    #[default]
    WidestOnly,
    /// Fall back to the next-widest dimensions before giving up — a
    /// strictly stronger variant, exposed for the ablation benches.
    TryAllDims,
}

/// Configuration for [`mondrian`].
#[derive(Debug, Clone, Default)]
pub struct MondrianConfig {
    /// If set, stop splitting classes once they are at or below this size
    /// (useful to bound work in micro-benchmarks; `None` = split fully).
    pub min_partition_size: Option<usize>,
    /// Dimension fallback policy (see [`DimPolicy`]).
    pub dim_policy: DimPolicy,
}

/// A node's position in the (binary) split tree: one byte per level, `0`
/// for the right child, `1` for the left.
///
/// The serial formulation of Mondrian pops a LIFO stack and pushes `left`
/// then `right`, so it emits leaves in right-subtree-first DFS order —
/// which is exactly ascending lexicographic order of this path encoding
/// (no leaf path is a prefix of another: a prefix would be an internal
/// node). The parallel driver tags every node with its path and sorts the
/// leaves once at the end, reproducing the serial EC order bit for bit.
type SplitPath = Vec<u8>;

/// Runs Mondrian under the given constraint and returns the resulting
/// partition.
///
/// The recursion is driven level-synchronously: all nodes of the current
/// frontier attempt their (independent) median splits across the
/// [`mini_rayon`] pool, then children form the next frontier. Each node's
/// split decision depends only on its own rows, and the final leaf order
/// is fixed by the `SplitPath` sort, so the published partition is
/// identical to the serial recursion at any thread count.
///
/// # Errors
///
/// * [`Error::EmptyTable`] for empty input;
/// * [`Error::BadQi`] / [`Error::BadSa`] for invalid attribute selections;
/// * [`Error::RootNotEligible`] if even the whole table violates the
///   constraint (no valid publication exists under Mondrian's scheme).
pub fn mondrian<C: SplitConstraint + Sync>(
    table: &Table,
    qi: &[usize],
    sa: usize,
    constraint: &C,
    cfg: &MondrianConfig,
) -> Result<Partition> {
    validate(table, qi, sa)?;
    if table.is_empty() {
        return Err(Error::EmptyTable);
    }
    let all: Vec<RowId> = (0..table.num_rows()).collect();
    if !constraint.acceptable(table, sa, &all) {
        return Err(Error::RootNotEligible);
    }

    let mut leaves: Vec<(SplitPath, Vec<RowId>)> = Vec::new();
    let mut frontier: Vec<(SplitPath, Vec<RowId>)> = vec![(SplitPath::new(), all)];
    while !frontier.is_empty() {
        let splits = mini_rayon::par_map(&frontier, |(_, rows)| {
            if let Some(min) = cfg.min_partition_size {
                if rows.len() <= min {
                    return None;
                }
            }
            try_split(table, qi, sa, rows, constraint, cfg.dim_policy)
        });
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for ((path, rows), split) in frontier.drain(..).zip(splits) {
            match split {
                Some((left, right)) => {
                    let mut left_path = path.clone();
                    left_path.push(1);
                    let mut right_path = path;
                    right_path.push(0);
                    next.push((left_path, left));
                    next.push((right_path, right));
                }
                None => leaves.push((path, rows)),
            }
        }
        frontier = next;
    }
    leaves.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let ecs: Vec<Vec<RowId>> = leaves.into_iter().map(|(_, rows)| rows).collect();
    Ok(Partition::new(qi.to_vec(), sa, ecs))
}

fn validate(table: &Table, qi: &[usize], sa: usize) -> Result<()> {
    let arity = table.schema().arity();
    if sa >= arity {
        return Err(Error::BadSa { index: sa, arity });
    }
    if qi.is_empty() {
        return Err(Error::BadQi("QI set is empty".into()));
    }
    let mut seen = std::collections::BTreeSet::new();
    for &a in qi {
        if a >= arity {
            return Err(Error::BadQi(format!("attribute {a} out of bounds")));
        }
        if a == sa {
            return Err(Error::BadQi(format!("attribute {a} is the SA")));
        }
        if !seen.insert(a) {
            return Err(Error::BadQi(format!("attribute {a} duplicated")));
        }
    }
    Ok(())
}

/// Attempts to split `rows` per the dimension policy; returns the first
/// admissible (median) bisection.
fn try_split<C: SplitConstraint>(
    table: &Table,
    qi: &[usize],
    sa: usize,
    rows: &[RowId],
    constraint: &C,
    policy: DimPolicy,
) -> Option<(Vec<RowId>, Vec<RowId>)> {
    // Rank dimensions by current normalized extent (widest first), the
    // standard Mondrian "choose_dimension".
    let mut dims: Vec<(f64, usize)> = qi
        .iter()
        .map(|&a| {
            let (lo, hi) = table.code_extent(a, rows).expect("nodes are non-empty");
            (table.schema().attr(a).normalized_span(lo, hi), a)
        })
        .collect();
    dims.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));

    for &(span, attr) in &dims {
        if span <= 0.0 {
            // All remaining dims are single-valued on this node.
            break;
        }
        let Some((left, right)) = median_split(table, attr, rows) else {
            // The widest dimension can be unsplittable only through heavy
            // ties; moving on costs nothing under either policy.
            continue;
        };
        if constraint.acceptable(table, sa, &left) && constraint.acceptable(table, sa, &right) {
            return Some((left, right));
        }
        if policy == DimPolicy::WidestOnly {
            // The canonical adaptation gives up after the chosen dimension.
            return None;
        }
    }
    None
}

/// Splits rows at the median value of `attr` into (≤ median, > median);
/// `None` if every row shares one value (unsplittable).
fn median_split(table: &Table, attr: usize, rows: &[RowId]) -> Option<(Vec<RowId>, Vec<RowId>)> {
    let col = table.column(attr);
    let mut values: Vec<u32> = rows.iter().map(|&r| col[r]).collect();
    let mid = values.len() / 2;
    let (_, &mut median, _) = values.select_nth_unstable(mid);
    // Left takes values <= median; if that swallows everything (heavy
    // ties), lower the threshold to the largest value strictly below the
    // median; if none exists the dimension is unsplittable.
    let max_val = rows.iter().map(|&r| col[r]).max().expect("non-empty");
    let threshold = if median == max_val {
        let below = rows.iter().map(|&r| col[r]).filter(|&v| v < median).max()?;
        below
    } else {
        median
    };
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in rows {
        if col[r] <= threshold {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    debug_assert!(!left.is_empty() && !right.is_empty());
    Some((left, right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::KAnonymityConstraint;
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    fn table(rows: usize, seed: u64) -> betalike_microdata::Table {
        random_table(&SyntheticConfig {
            rows,
            qi_attrs: 2,
            qi_cardinality: 32,
            sa_cardinality: 6,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn k_anonymous_partitions() {
        let t = table(500, 1);
        for k in [2usize, 5, 25, 100] {
            let p = mondrian(
                &t,
                &[0, 1],
                2,
                &KAnonymityConstraint { k },
                &MondrianConfig::default(),
            )
            .unwrap();
            assert!(p.validate_cover(500).is_ok());
            assert!(
                p.min_ec_size().unwrap() >= k,
                "k = {k}: smallest EC {}",
                p.min_ec_size().unwrap()
            );
            // Median splits guarantee every EC is below 2k+1 … not exactly,
            // but larger k must not yield more ECs.
            if k > 2 {
                let p2 = mondrian(
                    &t,
                    &[0, 1],
                    2,
                    &KAnonymityConstraint { k: 2 },
                    &MondrianConfig::default(),
                )
                .unwrap();
                assert!(p.num_ecs() <= p2.num_ecs());
            }
        }
    }

    #[test]
    fn root_violation_is_an_error() {
        let t = table(10, 2);
        let err = mondrian(
            &t,
            &[0, 1],
            2,
            &KAnonymityConstraint { k: 100 },
            &MondrianConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::RootNotEligible));
    }

    #[test]
    fn median_split_handles_ties() {
        // A column where 90% of rows share the maximum value: the split
        // threshold must back off below the median.
        use betalike_microdata::schema::Attribute;
        use betalike_microdata::{Schema, Table};
        use std::sync::Arc;
        let schema = Arc::new(
            Schema::new(
                vec![
                    Attribute::numeric_range("q", 0, 9).unwrap(),
                    Attribute::numeric_range("sa", 0, 1).unwrap(),
                ],
                1,
            )
            .unwrap(),
        );
        let mut q = vec![9u32; 18];
        q[0] = 1;
        q[1] = 3;
        let sa = vec![0u32; 18];
        let t = Table::from_columns(schema, vec![q, sa]).unwrap();
        let rows: Vec<usize> = (0..18).collect();
        let (l, r) = median_split(&t, 0, &rows).unwrap();
        assert_eq!(l.len(), 2, "only the two sub-median rows go left");
        assert_eq!(r.len(), 16);
        // A constant column is unsplittable.
        let const_rows: Vec<usize> = (2..18).collect();
        assert!(median_split(&t, 0, &const_rows).is_none());
    }

    #[test]
    fn input_validation() {
        let t = table(20, 3);
        let c = KAnonymityConstraint { k: 2 };
        let cfg = MondrianConfig::default();
        assert!(matches!(
            mondrian(&t, &[], 2, &c, &cfg),
            Err(Error::BadQi(_))
        ));
        assert!(matches!(
            mondrian(&t, &[0, 2], 2, &c, &cfg),
            Err(Error::BadQi(_))
        ));
        assert!(matches!(
            mondrian(&t, &[0], 7, &c, &cfg),
            Err(Error::BadSa { .. })
        ));
    }

    #[test]
    fn min_partition_size_caps_depth() {
        let t = table(512, 4);
        let unbounded = mondrian(
            &t,
            &[0, 1],
            2,
            &KAnonymityConstraint { k: 2 },
            &MondrianConfig::default(),
        )
        .unwrap();
        let capped = mondrian(
            &t,
            &[0, 1],
            2,
            &KAnonymityConstraint { k: 2 },
            &MondrianConfig {
                min_partition_size: Some(64),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(capped.num_ecs() < unbounded.num_ecs());
    }

    #[test]
    fn deterministic() {
        let t = table(300, 5);
        let c = KAnonymityConstraint { k: 10 };
        let a = mondrian(&t, &[0, 1], 2, &c, &MondrianConfig::default()).unwrap();
        let b = mondrian(&t, &[0, 1], 2, &c, &MondrianConfig::default()).unwrap();
        assert_eq!(a.ecs(), b.ecs());
    }

    #[test]
    fn thread_count_invariance() {
        // The level-synchronous parallel driver must emit ECs in the exact
        // serial DFS order (the SplitPath sort) at any thread count.
        let t = table(1_000, 6);
        let c = KAnonymityConstraint { k: 4 };
        let cfg = MondrianConfig::default();
        mini_rayon::set_threads(1);
        let serial = mondrian(&t, &[0, 1], 2, &c, &cfg).unwrap();
        for threads in [2, 8] {
            mini_rayon::set_threads(threads);
            let parallel = mondrian(&t, &[0, 1], 2, &c, &cfg).unwrap();
            assert_eq!(
                serial.ecs(),
                parallel.ecs(),
                "EC order differs at {threads} threads"
            );
        }
        mini_rayon::set_threads(0);
    }
}

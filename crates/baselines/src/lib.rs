//! # betalike-baselines
//!
//! The comparison algorithms of the paper's evaluation (Section 6):
//!
//! * [`mondrian()`] — the Mondrian multidimensional partitioner (LeFevre et
//!   al., ICDE 2006), generic over a [`mondrian::SplitConstraint`]. The
//!   paper adapts Mondrian to three privacy models, reproduced in
//!   [`constraints`]:
//!   * **LMondrian** — split only if both halves satisfy β-likeness;
//!   * **DMondrian** — split only if both halves satisfy
//!     δ-disclosure-privacy, with `δ = ln(1 + min{β, −ln max_i p_i})` chosen
//!     so the output also satisfies β-likeness (Section 6.2);
//!   * **tMondrian** — split only if both halves satisfy t-closeness.
//! * [`sabre()`] — a reimplementation of the SABRE t-closeness algorithm
//!   (Cao et al., VLDB J. 2011) in the same bucketize-and-redistribute
//!   framework as BUREL, with an EMD-budget eligibility condition.
//! * [`anatomy`] — the Baseline of Section 6.3: publish exact QI values
//!   together with the overall SA distribution (in the manner of Anatomy).
//!
//! All algorithms emit the same [`betalike_metrics::Partition`] publication
//! form as BUREL, so the auditors compare them apples-to-apples.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod anatomy;
pub mod constraints;
pub mod mondrian;
pub mod sabre;

pub use anatomy::AnatomyBaseline;
pub use constraints::{
    delta_for_beta, DeltaDisclosureConstraint, KAnonymityConstraint, LikenessConstraint,
    TClosenessConstraint, TwoSidedLikenessConstraint,
};
pub use mondrian::{mondrian, DimPolicy, MondrianConfig};
pub use sabre::{sabre, SabreConfig};

//! The privacy-model constraints the paper plugs into Mondrian
//! (Section 6.2), plus plain k-anonymity as the substrate model.
//!
//! Each constraint pre-computes the table-level SA distribution once, so
//! the per-node check is a single scan over the candidate class.

use crate::mondrian::SplitConstraint;
use betalike::model::BetaLikeness;
use betalike_metrics::audit::ClosenessMetric;
use betalike_microdata::{RowId, SaDistribution, Table};

/// Plain k-anonymity: every class holds at least `k` tuples.
#[derive(Debug, Clone, Copy)]
pub struct KAnonymityConstraint {
    /// Minimum class size.
    pub k: usize,
}

impl SplitConstraint for KAnonymityConstraint {
    fn acceptable(&self, _table: &Table, _sa: usize, rows: &[RowId]) -> bool {
        rows.len() >= self.k
    }
}

/// LMondrian's condition: the class satisfies β-likeness w.r.t. the overall
/// table distribution.
#[derive(Debug, Clone)]
pub struct LikenessConstraint {
    model: BetaLikeness,
    table_dist: SaDistribution,
}

impl LikenessConstraint {
    /// Builds the constraint for `table`'s SA distribution.
    pub fn new(table: &Table, sa: usize, model: BetaLikeness) -> Self {
        LikenessConstraint {
            model,
            table_dist: table.sa_distribution(sa),
        }
    }
}

impl SplitConstraint for LikenessConstraint {
    fn acceptable(&self, table: &Table, sa: usize, rows: &[RowId]) -> bool {
        let q = table.sa_distribution_of(sa, rows);
        self.model.satisfies(&self.table_dist, &q)
    }
}

/// DMondrian's condition: δ-disclosure-privacy,
/// `∀ i with p_i > 0: e^{−δ}·p_i < q_i < e^{δ}·p_i` — note the *lower*
/// bound, which forces every table value to occur in every class (the
/// rigidity Section 2 of the paper criticizes).
#[derive(Debug, Clone)]
pub struct DeltaDisclosureConstraint {
    delta: f64,
    table_dist: SaDistribution,
}

impl DeltaDisclosureConstraint {
    /// Builds the constraint for `table`'s SA distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `delta > 0` and finite.
    pub fn new(table: &Table, sa: usize, delta: f64) -> Self {
        assert!(delta.is_finite() && delta > 0.0, "delta must be positive");
        DeltaDisclosureConstraint {
            delta,
            table_dist: table.sa_distribution(sa),
        }
    }

    /// The configured δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

impl SplitConstraint for DeltaDisclosureConstraint {
    fn acceptable(&self, table: &Table, sa: usize, rows: &[RowId]) -> bool {
        let q = table.sa_distribution_of(sa, rows);
        let lo = (-self.delta).exp();
        let hi = self.delta.exp();
        self.table_dist
            .freqs()
            .iter()
            .zip(q.freqs())
            .all(|(&p, &qf)| p <= 0.0 || (qf > lo * p && qf < hi * p))
    }
}

/// tMondrian's condition: EMD between the class distribution and the table
/// distribution is at most `t`.
#[derive(Debug, Clone)]
pub struct TClosenessConstraint {
    t: f64,
    metric: ClosenessMetric,
    table_dist: SaDistribution,
}

impl TClosenessConstraint {
    /// Builds the constraint for `table`'s SA distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t` and finite.
    pub fn new(table: &Table, sa: usize, t: f64, metric: ClosenessMetric) -> Self {
        assert!(t.is_finite() && t > 0.0, "t must be positive");
        TClosenessConstraint {
            t,
            metric,
            table_dist: table.sa_distribution(sa),
        }
    }

    /// The configured threshold.
    pub fn t(&self) -> f64 {
        self.t
    }
}

impl SplitConstraint for TClosenessConstraint {
    fn acceptable(&self, table: &Table, sa: usize, rows: &[RowId]) -> bool {
        let q = table.sa_distribution_of(sa, rows);
        self.metric.distance(self.table_dist.freqs(), q.freqs()) <= self.t
    }
}

/// The two-sided β-likeness condition (the paper's Section 7 extension):
/// positive *and* negative relative gain bounded by the model.
#[derive(Debug, Clone)]
pub struct TwoSidedLikenessConstraint {
    model: BetaLikeness,
    table_dist: SaDistribution,
}

impl TwoSidedLikenessConstraint {
    /// Builds the constraint for `table`'s SA distribution.
    pub fn new(table: &Table, sa: usize, model: BetaLikeness) -> Self {
        TwoSidedLikenessConstraint {
            model,
            table_dist: table.sa_distribution(sa),
        }
    }
}

impl SplitConstraint for TwoSidedLikenessConstraint {
    fn acceptable(&self, table: &Table, sa: usize, rows: &[RowId]) -> bool {
        let q = table.sa_distribution_of(sa, rows);
        self.model.check_two_sided(&self.table_dist, &q, 0).is_ok()
    }
}

/// The δ the paper gives DMondrian so that δ-disclosure-privacy implies
/// β-likeness (Section 6.2):
/// `δ = ln(1 + min{β, −ln(max_i p_i)})`.
///
/// Rationale: δ-disclosure's upper bound is `q_i < e^δ·p_i`; picking
/// `e^δ = 1 + min{β, −ln p_i}` for the *largest* `p_i` (whose `−ln p` is
/// smallest, hence whose enhanced cap is the tightest multiplier) makes the
/// bound at most the enhanced β-likeness cap for every value.
pub fn delta_for_beta(beta: f64, table_dist: &SaDistribution) -> f64 {
    let p_max = table_dist.max_freq();
    assert!(p_max > 0.0, "empty distribution");
    (1.0 + beta.min(-(p_max.ln()))).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};

    fn table() -> Table {
        random_table(&SyntheticConfig {
            rows: 2_000,
            qi_attrs: 2,
            sa_cardinality: 5,
            sa_shape: SaShape::Zipf(0.8),
            seed: 6,
            ..Default::default()
        })
    }

    #[test]
    fn k_anonymity_counts_rows() {
        let t = table();
        let c = KAnonymityConstraint { k: 3 };
        assert!(c.acceptable(&t, 2, &[0, 1, 2]));
        assert!(!c.acceptable(&t, 2, &[0, 1]));
    }

    #[test]
    fn likeness_accepts_whole_table() {
        let t = table();
        let model = BetaLikeness::new(1.0).unwrap();
        let c = LikenessConstraint::new(&t, 2, model);
        let all: Vec<usize> = (0..t.num_rows()).collect();
        assert!(c.acceptable(&t, 2, &all), "the table mirrors itself");
    }

    #[test]
    fn likeness_rejects_concentration() {
        let t = table();
        let model = BetaLikeness::new(0.5).unwrap();
        let c = LikenessConstraint::new(&t, 2, model);
        // A class of rows sharing one SA value concentrates q = 1.
        let v0: Vec<usize> = (0..t.num_rows())
            .filter(|&r| t.value(r, 2) == 4)
            .take(10)
            .collect();
        assert!(v0.len() == 10);
        assert!(!c.acceptable(&t, 2, &v0));
    }

    #[test]
    fn delta_disclosure_needs_full_support() {
        let t = table();
        let c = DeltaDisclosureConstraint::new(&t, 2, 2.0);
        let all: Vec<usize> = (0..t.num_rows()).collect();
        assert!(c.acceptable(&t, 2, &all));
        // Any class missing some value is rejected regardless of δ.
        let missing: Vec<usize> = (0..t.num_rows()).filter(|&r| t.value(r, 2) != 0).collect();
        assert!(!c.acceptable(&t, 2, &missing));
    }

    #[test]
    fn t_closeness_thresholds() {
        let t = table();
        let all: Vec<usize> = (0..t.num_rows()).collect();
        let tight = TClosenessConstraint::new(&t, 2, 1e-6, ClosenessMetric::EqualDistance);
        assert!(tight.acceptable(&t, 2, &all), "EMD(table, table) = 0");
        // Half the rows sharing value 0 has EMD > 0.2 for this Zipf data.
        let conc: Vec<usize> = (0..t.num_rows()).filter(|&r| t.value(r, 2) == 0).collect();
        assert!(!tight.acceptable(&t, 2, &conc));
        let loose = TClosenessConstraint::new(&t, 2, 1.0, ClosenessMetric::EqualDistance);
        assert!(loose.acceptable(&t, 2, &conc));
    }

    #[test]
    fn delta_for_beta_matches_section6() {
        // δ = ln(1 + min{β, −ln max p}).
        let dist = SaDistribution::from_counts(vec![10, 20, 70]);
        let d = delta_for_beta(2.0, &dist);
        let expected = (1.0 + 2.0f64.min(-(0.7f64.ln()))).ln();
        assert!((d - expected).abs() < 1e-12);
        // For a very frequent value, −ln p_max < β kicks in.
        assert!((d - (1.0f64 + 0.356675).ln()).abs() < 1e-5);
    }

    #[test]
    fn two_sided_is_stricter_than_one_sided() {
        let t = table();
        let model = BetaLikeness::new(1.0).unwrap();
        let one = LikenessConstraint::new(&t, 2, model);
        let two = TwoSidedLikenessConstraint::new(&t, 2, model);
        let all: Vec<usize> = (0..t.num_rows()).collect();
        assert!(two.acceptable(&t, 2, &all));
        // Every class two-sided accepts must pass the one-sided check.
        for chunk in all.chunks(61) {
            if two.acceptable(&t, 2, chunk) {
                assert!(one.acceptable(&t, 2, chunk));
            }
        }
        // A class missing a supported value entirely fails two-sided but
        // can pass one-sided.
        let missing: Vec<usize> = (0..t.num_rows()).filter(|&r| t.value(r, 2) != 0).collect();
        assert!(!two.acceptable(&t, 2, &missing));
    }

    #[test]
    fn delta_disclosure_implies_beta_likeness() {
        // The paper's reduction: a class satisfying δ-disclosure with
        // δ = delta_for_beta(β) also satisfies enhanced β-likeness.
        let t = table();
        let dist = t.sa_distribution(2);
        let beta = 1.5;
        let delta = delta_for_beta(beta, &dist);
        let dc = DeltaDisclosureConstraint::new(&t, 2, delta);
        let model = BetaLikeness::new(beta).unwrap();
        // Scan many random classes; whenever δ-disclosure accepts,
        // β-likeness must too.
        for chunk in (0..t.num_rows()).collect::<Vec<_>>().chunks(97) {
            if dc.acceptable(&t, 2, chunk) {
                let q = t.sa_distribution_of(2, chunk);
                assert!(
                    model.satisfies(&dist, &q),
                    "delta-accepted class violates beta-likeness"
                );
            }
        }
    }
}

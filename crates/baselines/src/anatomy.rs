//! The Baseline of Section 6.3: publish exact QI values together with the
//! overall SA distribution, in the manner of Anatomy (Xiao & Tao, VLDB
//! 2006).
//!
//! This publication reveals nothing about individual SA assignments beyond
//! the global histogram, so its aggregation-query answer for
//! `pred(QI) AND pred(SA)` is `|S_t| · Σ_{v ∈ R_SA} p_v` — the yardstick
//! the perturbation scheme is compared against in Figure 9.

use betalike_microdata::{RowId, SaDistribution, Table};

/// An Anatomy-style publication: QI columns verbatim plus the global SA
/// histogram.
#[derive(Debug, Clone)]
pub struct AnatomyBaseline {
    sa: usize,
    sa_dist: SaDistribution,
}

impl AnatomyBaseline {
    /// Publishes `table` as exact QIs + overall SA distribution.
    pub fn publish(table: &Table, sa: usize) -> Self {
        AnatomyBaseline {
            sa,
            sa_dist: table.sa_distribution(sa),
        }
    }

    /// The SA attribute index.
    pub fn sa(&self) -> usize {
        self.sa
    }

    /// The published global SA distribution.
    pub fn sa_distribution(&self) -> &SaDistribution {
        &self.sa_dist
    }

    /// Estimated count of tuples among `qi_matches` whose SA code lies in
    /// `[sa_lo, sa_hi]`: `|S_t| · Σ_{v ∈ range} p_v`.
    pub fn estimate(&self, qi_matches: &[RowId], sa_lo: u32, sa_hi: u32) -> f64 {
        self.estimate_from_len(qi_matches.len(), sa_lo, sa_hi)
    }

    /// [`AnatomyBaseline::estimate`] from the selection *size* alone — the
    /// published answer never depends on which rows matched, so callers
    /// that can count `|S_t|` without materializing it (the aggregate
    /// catalog of `betalike-query`) get a bit-identical answer through
    /// here.
    pub fn estimate_from_len(&self, num_matches: usize, sa_lo: u32, sa_hi: u32) -> f64 {
        let range_mass: f64 = (sa_lo..=sa_hi.min(self.sa_dist.m() as u32 - 1))
            .map(|v| self.sa_dist.freq(v))
            .sum();
        num_matches as f64 * range_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};

    #[test]
    fn estimate_scales_with_selection_and_range() {
        let t = random_table(&SyntheticConfig {
            rows: 1_000,
            sa_cardinality: 10,
            sa_shape: SaShape::Uniform,
            seed: 1,
            ..Default::default()
        });
        let b = AnatomyBaseline::publish(&t, 2);
        let all: Vec<usize> = (0..1_000).collect();
        // The full SA range yields exactly |S_t|.
        assert!((b.estimate(&all, 0, 9) - 1_000.0).abs() < 1e-9);
        // Half the rows, ~half the range.
        let half: Vec<usize> = (0..500).collect();
        let est = b.estimate(&half, 0, 4);
        assert!((est - 250.0).abs() < 25.0, "uniform data: est = {est}");
        // Empty selection estimates zero.
        assert_eq!(b.estimate(&[], 0, 9), 0.0);
    }

    #[test]
    fn estimate_clamps_range() {
        let t = random_table(&SyntheticConfig {
            rows: 100,
            sa_cardinality: 4,
            seed: 2,
            ..Default::default()
        });
        let b = AnatomyBaseline::publish(&t, 2);
        let rows: Vec<usize> = (0..100).collect();
        // A range past the domain end behaves like the domain end.
        assert!((b.estimate(&rows, 0, 99) - b.estimate(&rows, 0, 3)).abs() < 1e-12);
    }

    #[test]
    fn is_independent_of_qi_within_selection() {
        // The estimate depends only on |S_t|, never on which rows matched —
        // the defining weakness Figure 9 exposes.
        let t = random_table(&SyntheticConfig {
            rows: 400,
            sa_cardinality: 6,
            sa_shape: SaShape::Zipf(1.3),
            seed: 3,
            ..Default::default()
        });
        let b = AnatomyBaseline::publish(&t, 2);
        let first: Vec<usize> = (0..200).collect();
        let last: Vec<usize> = (200..400).collect();
        assert_eq!(b.estimate(&first, 1, 3), b.estimate(&last, 1, 3));
    }
}

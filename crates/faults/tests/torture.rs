//! The crash-point torture suite: kill the artifact store at **every**
//! Vfs injection site and prove the durability claims.
//!
//! For each global op index of a golden (fault-free) workload run, a fresh
//! fixture store is driven through the same workload with
//! [`FaultPlan::CrashAt`] at that index, then reopened on the real
//! filesystem. Invariants, for every crash point:
//!
//! * the reopen succeeds — the manifest is never torn;
//! * every *committed* artifact (save acknowledged `Ok`, never removed)
//!   loads, is bit-identical to its expected serialization, and passes
//!   the independent conformance oracle;
//! * an acknowledged remove stays removed;
//! * everything the reopened store serves is bit-identical to a known
//!   artifact (a crash can lose an unacknowledged save, never mutate one);
//! * every file in `quarantine/` is genuinely damaged — parse failure,
//!   handle mismatch, or bytes differing from the known-good serialization.
//!
//! Coverage is enumerable the same way `AttackKind::ALL` is: the union of
//! site labels observed across all runs must equal
//! `betalike_store::disk::site::VFS_SITES`, both directions — so routing a
//! new syscall through a site this suite never reaches (or bypassing the
//! roster) fails the suite.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use betalike_conformance::{publish_snapshot, verify_snapshot, PublishSpec, Scheme};
use betalike_faults::{ChaosVfs, FaultPlan, Vfs, VfsOp};
use betalike_microdata::json::Json;
use betalike_store::disk::{site, ARTIFACTS_DIR, QUARANTINE_DIR};
use betalike_store::{
    publication_from_slice, publication_to_vec, ArtifactStore, PublicationSnapshot,
};

struct Fixture {
    /// Saved before the workload — always committed.
    base: PublicationSnapshot,
    /// Saved by the workload.
    a: PublicationSnapshot,
    /// Saved by the workload after `a`.
    b: PublicationSnapshot,
    /// Saved, then byte-flipped on disk — must always end up quarantined
    /// or dropped, never served.
    corrupt: PublicationSnapshot,
    /// Present as a manifest-less `.bpub` — adopted on open, then removed
    /// by the workload.
    orphan: PublicationSnapshot,
    /// handle → known-good serialized bytes, for bit-identity checks.
    expected: BTreeMap<String, Vec<u8>>,
}

impl Fixture {
    fn build() -> Fixture {
        let mk = |seed: u64, scheme: Scheme, rows: usize| {
            let spec = PublishSpec::synthetic(rows, seed, scheme);
            let table = spec.synthetic_table();
            publish_snapshot(&table, &spec).expect("fixture publish")
        };
        let base = mk(11, Scheme::Anatomy, 48);
        let a = mk(12, Scheme::Perturb, 48);
        let b = mk(13, Scheme::Anatomy, 60);
        let corrupt = mk(14, Scheme::Anatomy, 48);
        let orphan = mk(15, Scheme::Anatomy, 48);
        let mut expected = BTreeMap::new();
        for snap in [&base, &a, &b, &corrupt, &orphan] {
            expected.insert(
                snap.params.handle.clone(),
                publication_to_vec(snap).expect("fixture serialize"),
            );
        }
        let handles: BTreeSet<&String> = expected.keys().collect();
        assert_eq!(handles.len(), 5, "fixture handles must be distinct");
        Fixture {
            base,
            a,
            b,
            corrupt,
            orphan,
            expected,
        }
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("betalike-torture-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Lay down the pre-workload state on the real filesystem: a committed
/// base artifact, a byte-flipped artifact, an orphan `.bpub`, and a stale
/// tempfile.
fn setup_dir(fx: &Fixture, tag: &str) -> PathBuf {
    let root = temp_root(tag);
    let (store, quarantined) = ArtifactStore::open(&root).expect("fixture open");
    assert!(quarantined.is_empty());
    store.save(&fx.base).expect("fixture save base");
    store.save(&fx.corrupt).expect("fixture save corrupt");
    drop(store);
    let artifacts = root.join(ARTIFACTS_DIR);
    // Byte-flip the to-be-quarantined artifact mid-file.
    let corrupt_path = artifacts.join(format!("{}.bpub", fx.corrupt.params.handle));
    let mut bytes = std::fs::read(&corrupt_path).expect("read corrupt fixture");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&corrupt_path, &bytes).expect("write corrupt fixture");
    // Orphan: valid artifact file, no manifest row (the crash window
    // between artifact rename and manifest rewrite).
    std::fs::write(
        artifacts.join(format!("{}.bpub", fx.orphan.params.handle)),
        &fx.expected[&fx.orphan.params.handle],
    )
    .expect("write orphan fixture");
    // Stale tempfile from an interrupted write.
    std::fs::write(artifacts.join("junk.tmp"), b"stale").expect("write junk.tmp");
    root
}

struct Outcome {
    /// Handles whose presence (and bit-identity) the reopen must prove.
    committed: BTreeSet<String>,
    /// The orphan remove was acknowledged — it must stay gone.
    removed_orphan: bool,
}

/// The workload every run (golden, crash, seeded) drives: open, two
/// saves, a read, a remove, a read. Errors are swallowed — under a crash
/// plan everything past the crash point fails — but acknowledgements are
/// tracked, because acknowledged work is what recovery must preserve.
fn workload(root: &Path, vfs: Arc<dyn Vfs>, fx: &Fixture) -> Outcome {
    let mut committed: BTreeSet<String> = BTreeSet::new();
    committed.insert(fx.base.params.handle.clone());
    let mut removed_orphan = false;
    if let Ok((store, _)) = ArtifactStore::open_with(root, vfs) {
        if store.save(&fx.a).is_ok() {
            committed.insert(fx.a.params.handle.clone());
        }
        if store.save(&fx.b).is_ok() {
            committed.insert(fx.b.params.handle.clone());
        }
        let _ = store.load(&fx.base.params.handle);
        if let Ok(true) = store.remove(&fx.orphan.params.handle) {
            removed_orphan = true;
        }
        let _ = store.load(&fx.a.params.handle);
        // Exercise the degraded-recovery probe sites (probe.write /
        // probe.remove); a crash mid-probe must never cost an artifact.
        let _ = store.probe();
    }
    Outcome {
        committed,
        removed_orphan,
    }
}

/// The handle a quarantine file name points at (`h.bpub`, `h.bpub.3` →
/// `h`).
fn quarantine_stem(name: &str) -> String {
    match name.find(".bpub") {
        Some(i) => name[..i].to_string(),
        None => name.to_string(),
    }
}

/// Reopen on the real filesystem and check every recovery invariant.
fn assert_recovered(root: &Path, fx: &Fixture, out: &Outcome, ctx: &str) {
    let (store, _quarantined) = ArtifactStore::open(root)
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed (torn manifest?): {e}"));
    let served: BTreeSet<String> = store.handles().into_iter().collect();

    for handle in &out.committed {
        let snap = store
            .load(handle)
            .unwrap_or_else(|e| panic!("{ctx}: committed `{handle}` unreadable: {e}"))
            .unwrap_or_else(|| panic!("{ctx}: committed `{handle}` lost"));
        let on_disk = std::fs::read(store.path_of(handle)).expect("read served artifact");
        assert_eq!(
            on_disk, fx.expected[handle],
            "{ctx}: committed `{handle}` not bit-identical"
        );
        let report = verify_snapshot(&snap);
        assert!(
            report.pass(),
            "{ctx}: committed `{handle}` fails the conformance oracle"
        );
    }

    assert!(
        !served.contains(&fx.corrupt.params.handle),
        "{ctx}: byte-flipped artifact must never be served"
    );
    if out.removed_orphan {
        assert!(
            !served.contains(&fx.orphan.params.handle),
            "{ctx}: acknowledged remove came back"
        );
    }

    // Anything served must be one of our artifacts, bit-identical: a
    // crash may lose unacknowledged work, never corrupt served bytes.
    for handle in &served {
        let bytes = std::fs::read(store.path_of(handle)).expect("read served artifact");
        let expected = fx
            .expected
            .get(handle)
            .unwrap_or_else(|| panic!("{ctx}: unknown handle `{handle}` served"));
        assert_eq!(&bytes, expected, "{ctx}: served `{handle}` mutated");
    }

    // Quarantine only holds genuinely damaged files.
    for path in std::fs::read_dir(root.join(QUARANTINE_DIR))
        .expect("list quarantine")
        .map(|e| e.expect("quarantine entry").path())
    {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("quarantine file name")
            .to_string();
        let handle = quarantine_stem(&name);
        let bytes = std::fs::read(&path).expect("read quarantined file");
        let genuine = match publication_from_slice(&bytes) {
            Err(_) => true,
            Ok(snap) => {
                snap.params.handle != handle
                    || fx.expected.get(&handle).is_some_and(|want| want != &bytes)
            }
        };
        assert!(genuine, "{ctx}: healthy file `{name}` wrongly quarantined");
    }
}

fn site_names(seen: &BTreeSet<&'static str>) -> BTreeSet<String> {
    seen.iter().map(|s| s.to_string()).collect()
}

#[test]
fn crash_matrix_covers_every_site_and_preserves_committed_artifacts() {
    let fx = Fixture::build();

    // Golden run: no faults, record the op schedule and baseline coverage.
    let golden_root = setup_dir(&fx, "golden");
    let golden = Arc::new(ChaosVfs::new(FaultPlan::None));
    let out = workload(&golden_root, golden.clone(), &fx);
    assert_eq!(out.committed.len(), 3, "golden run must commit base+a+b");
    assert!(out.removed_orphan, "golden run must remove the orphan");
    assert_recovered(&golden_root, &fx, &out, "golden");
    let golden_ops = golden.ops();
    assert!(
        golden_ops >= site::VFS_SITES.len() as u64,
        "golden run too small to exercise the site roster"
    );
    let mut seen: BTreeSet<&'static str> = golden.sites_seen();
    let _ = std::fs::remove_dir_all(&golden_root);

    // Crash matrix: one run per golden op index.
    let mut crash_sites: Vec<String> = Vec::new();
    for k in 0..golden_ops {
        let root = setup_dir(&fx, &format!("crash-{k}"));
        let chaos = Arc::new(ChaosVfs::new(FaultPlan::CrashAt(k)));
        let out = workload(&root, chaos.clone(), &fx);
        assert!(chaos.crashed(), "crash point {k} never fired");
        let crashed_at = chaos
            .log()
            .iter()
            .find(|r| r.index == k)
            .map(|r| r.site)
            .expect("crash op recorded");
        crash_sites.push(format!("{k}:{crashed_at}"));
        seen.extend(chaos.sites_seen());
        assert_recovered(&root, &fx, &out, &format!("crash@{k} ({crashed_at})"));
        let _ = std::fs::remove_dir_all(&root);
    }

    // Targeted run: force the quarantine rename to fail so the
    // cross-filesystem fallback (copy + remove) sites are exercised too.
    let root = setup_dir(&fx, "fallback");
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::FailSite {
        site: site::QUARANTINE_RENAME,
        nth: 0,
        kind: io::ErrorKind::InvalidInput,
    }));
    let out = workload(&root, chaos.clone(), &fx);
    seen.extend(chaos.sites_seen());
    assert_recovered(&root, &fx, &out, "quarantine-fallback");
    let _ = std::fs::remove_dir_all(&root);

    // Site coverage, both directions — mirrors `AttackKind::ALL`.
    let seen_names = site_names(&seen);
    let roster: BTreeSet<String> = site::VFS_SITES.iter().map(|s| s.to_string()).collect();
    let unobserved: Vec<&String> = roster.difference(&seen_names).collect();
    assert!(
        unobserved.is_empty(),
        "sites in VFS_SITES the torture suite never reached: {unobserved:?}"
    );
    let unlisted: Vec<&String> = seen_names.difference(&roster).collect();
    assert!(
        unlisted.is_empty(),
        "observed sites missing from VFS_SITES: {unlisted:?}"
    );

    // Machine-readable report for the CI artifact upload.
    let report = Json::Obj(vec![
        ("suite".into(), Json::Str("crash-point torture".into())),
        ("golden_ops".into(), Json::Num(golden_ops as f64)),
        ("crash_points".into(), Json::Num(crash_sites.len() as f64)),
        (
            "sites_covered".into(),
            Json::Arr(
                seen_names
                    .intersection(&roster)
                    .map(|s| Json::Str(s.clone()))
                    .collect(),
            ),
        ),
        (
            "crash_schedule".into(),
            Json::Arr(crash_sites.into_iter().map(Json::Str).collect()),
        ),
        ("pass".into(), Json::Bool(true)),
    ]);
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _ = std::fs::create_dir_all(&out_dir);
    std::fs::write(out_dir.join("torture-report.json"), report.pretty() + "\n")
        .expect("write torture report");
}

#[test]
fn seeded_schedules_are_replayable_and_recoverable() {
    let fx = Fixture::build();
    let run = |seed: u64, tag: &str| {
        let root = setup_dir(&fx, tag);
        let chaos = Arc::new(ChaosVfs::new(FaultPlan::Seeded {
            seed,
            fail_per_mille: 120,
        }));
        let out = workload(&root, chaos.clone(), &fx);
        assert_recovered(&root, &fx, &out, &format!("seeded#{seed}"));
        let log: Vec<(u64, &'static str, VfsOp, bool)> = chaos
            .log()
            .iter()
            .map(|r| (r.index, r.site, r.op, r.ok))
            .collect();
        let _ = std::fs::remove_dir_all(&root);
        log
    };
    let a = run(1001, "seeded-a1");
    let b = run(1001, "seeded-a2");
    assert_eq!(a, b, "same seed must replay the same schedule");
    let c = run(2002, "seeded-b1");
    assert_ne!(a, c, "different seeds should diverge");
}

//! The syscall-routing trait and its production passthrough.
//!
//! Every filesystem operation the artifact store performs goes through a
//! [`Vfs`], tagged with a stable *site* label (a `&'static str` naming the
//! call site, e.g. `save.fsync.tmp`). Production code pays one dynamic
//! dispatch per syscall — noise next to the syscall itself — while tests
//! substitute [`crate::ChaosVfs`] to fail or crash-halt any operation.

use std::io;
use std::path::{Path, PathBuf};

/// The operation class of a [`Vfs`] call — what a fault plan keys on when
/// it distinguishes reads (safe to fail without losing data) from the
/// mutating operations a crash can tear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VfsOp {
    /// `create_dir_all`.
    CreateDirAll,
    /// Directory listing.
    ReadDir,
    /// Whole-file read.
    Read,
    /// Whole-file read as UTF-8.
    ReadToString,
    /// Create + write a whole file (no durability until [`VfsOp::Fsync`]).
    Write,
    /// Flush a file (or directory) to stable storage.
    Fsync,
    /// Atomic rename.
    Rename,
    /// Unlink a file.
    RemoveFile,
    /// Copy a file (the quarantine cross-filesystem fallback).
    Copy,
}

impl VfsOp {
    /// Whether the operation mutates the filesystem — the class a
    /// write-failure plan (degraded-mode simulation) fails while leaving
    /// reads intact.
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            VfsOp::CreateDirAll
                | VfsOp::Write
                | VfsOp::Fsync
                | VfsOp::Rename
                | VfsOp::RemoveFile
                | VfsOp::Copy
        )
    }

    /// A short stable name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            VfsOp::CreateDirAll => "create_dir_all",
            VfsOp::ReadDir => "read_dir",
            VfsOp::Read => "read",
            VfsOp::ReadToString => "read_to_string",
            VfsOp::Write => "write",
            VfsOp::Fsync => "fsync",
            VfsOp::Rename => "rename",
            VfsOp::RemoveFile => "remove_file",
            VfsOp::Copy => "copy",
        }
    }
}

/// Injectable filesystem operations. Implementations must be shareable
/// across server workers (`Send + Sync`) and printable in server state
/// dumps (`Debug`).
///
/// `site` is a stable label of the *call site* (see
/// `betalike_store::disk::site`); fault plans address operations by site
/// and the torture suite asserts full site coverage.
pub trait Vfs: std::fmt::Debug + Send + Sync {
    /// `std::fs::create_dir_all`.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn create_dir_all(&self, site: &'static str, path: &Path) -> io::Result<()>;

    /// Directory listing, **sorted** so iteration order never depends on
    /// the filesystem (determinism rule D1 extends to directory walks).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn read_dir(&self, site: &'static str, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Whole-file read.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn read(&self, site: &'static str, path: &Path) -> io::Result<Vec<u8>>;

    /// Whole-file read as UTF-8.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn read_to_string(&self, site: &'static str, path: &Path) -> io::Result<String>;

    /// Create (truncating) and write a whole file. Durability is *not*
    /// implied — callers follow with [`Vfs::fsync`] before renaming into
    /// place, exactly like the raw syscall sequence.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure. A crash plan
    /// may leave a torn prefix of `bytes` behind.
    fn write(&self, site: &'static str, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flush `path` (a file *or* a directory — directory fsync is what
    /// makes a rename itself durable) to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn fsync(&self, site: &'static str, path: &Path) -> io::Result<()>;

    /// Atomic rename.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn rename(&self, site: &'static str, from: &Path, to: &Path) -> io::Result<()>;

    /// Unlink a file.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn remove_file(&self, site: &'static str, path: &Path) -> io::Result<()>;

    /// Copy a file.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O failure.
    fn copy(&self, site: &'static str, from: &Path, to: &Path) -> io::Result<u64>;

    /// Whether `path` exists. Not an injection point: existence probes
    /// cannot fail in a way the store distinguishes from "absent", so a
    /// chaos plan gains nothing by lying here.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create_dir_all(&self, _site: &'static str, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, _site: &'static str, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }

    fn read(&self, _site: &'static str, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_to_string(&self, _site: &'static str, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, _site: &'static str, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn fsync(&self, _site: &'static str, path: &Path) -> io::Result<()> {
        // Opening read-only is enough: fsync(2) flushes the file (or, for
        // a directory, the rename recorded in it) regardless of the open
        // mode on the platforms this workspace targets.
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, _site: &'static str, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, _site: &'static str, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn copy(&self, _site: &'static str, from: &Path, to: &Path) -> io::Result<u64> {
        std::fs::copy(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("betalike-vfs-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn real_vfs_roundtrip_and_sorted_listing() {
        let dir = temp("roundtrip");
        let v = RealVfs;
        v.create_dir_all("t", &dir).unwrap();
        v.write("t", &dir.join("b.txt"), b"beta").unwrap();
        v.write("t", &dir.join("a.txt"), b"alpha").unwrap();
        v.fsync("t", &dir.join("a.txt")).unwrap();
        v.fsync("t", &dir).unwrap();
        assert_eq!(v.read("t", &dir.join("a.txt")).unwrap(), b"alpha");
        assert_eq!(v.read_to_string("t", &dir.join("b.txt")).unwrap(), "beta");
        let listed = v.read_dir("t", &dir).unwrap();
        assert_eq!(
            listed,
            vec![dir.join("a.txt"), dir.join("b.txt")],
            "read_dir must sort"
        );
        v.rename("t", &dir.join("a.txt"), &dir.join("c.txt"))
            .unwrap();
        assert!(v.exists(&dir.join("c.txt")) && !v.exists(&dir.join("a.txt")));
        assert_eq!(
            v.copy("t", &dir.join("c.txt"), &dir.join("d.txt")).unwrap(),
            5
        );
        v.remove_file("t", &dir.join("d.txt")).unwrap();
        assert!(!v.exists(&dir.join("d.txt")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutation_classes() {
        assert!(VfsOp::Write.is_mutation() && VfsOp::Rename.is_mutation());
        assert!(!VfsOp::Read.is_mutation() && !VfsOp::ReadDir.is_mutation());
        assert_eq!(VfsOp::Fsync.name(), "fsync");
    }
}

//! Deterministic jittered retry/backoff for the wire client.
//!
//! The schedule is capped exponential backoff with *deterministic* jitter:
//! each attempt's delay is drawn from ChaCha8 keyed on `(jitter_seed,
//! attempt)`, so a given seed always produces the same schedule — the
//! client stays replayable (workspace determinism rule D4) while still
//! decorrelating concurrent retriers that pick different seeds.

use std::sync::Mutex;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Mixes the attempt number into the jitter seed (same constant as the
/// chaos module's per-op seeding).
const ATTEMPT_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A capped-exponential backoff schedule with deterministic jitter.
///
/// Attempt numbering: attempt `0` is the initial try (no delay before
/// it); `delay_ms(k)` is the wait *before* attempt `k`, for `k >= 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Base delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per retry (≥ 1.0).
    pub factor: f64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The workspace default: up to `max_attempts` tries starting at 25ms,
    /// doubling, capped at 800ms.
    pub fn standard(max_attempts: u32, jitter_seed: u64) -> Self {
        RetryPolicy {
            max_attempts,
            base_ms: 25,
            factor: 2.0,
            cap_ms: 800,
            jitter_seed,
        }
    }

    /// A policy that never retries (one attempt, no delays).
    pub fn none() -> Self {
        RetryPolicy::standard(1, 0)
    }

    /// The deterministic delay before attempt `attempt` (1-based; attempt
    /// 0 is the initial try and has no delay). The un-jittered delay is
    /// `min(cap_ms, base_ms * factor^(attempt-1))`; jitter then draws
    /// uniformly from `[delay/2, delay]` ("equal jitter") keyed on
    /// `(jitter_seed, attempt)`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = self.factor.max(1.0).powi(attempt.saturating_sub(1) as i32);
        let raw = (self.base_ms as f64 * exp).min(self.cap_ms as f64) as u64;
        let raw = raw.min(self.cap_ms);
        if raw <= 1 {
            return raw;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.jitter_seed ^ u64::from(attempt).wrapping_mul(ATTEMPT_MIX),
        );
        let half = raw / 2;
        half + rng.gen_range(0..=(raw - half))
    }

    /// The full delay schedule: one entry per *retry* (so
    /// `max_attempts - 1` entries).
    pub fn schedule(&self) -> Vec<u64> {
        (1..self.max_attempts).map(|a| self.delay_ms(a)).collect()
    }
}

/// The injectable clock behind retry delays: production sleeps, tests
/// record.
pub trait Sleeper {
    /// Wait for `d` (or record that the caller would have).
    fn sleep(&self, d: Duration);
}

/// The production [`Sleeper`]: `std::thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A [`Sleeper`] that records every requested delay and never blocks —
/// the fake clock retry tests assert schedules against.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    slept: Mutex<Vec<Duration>>,
}

impl RecordingSleeper {
    /// A fresh recorder with no recorded sleeps.
    pub fn new() -> Self {
        RecordingSleeper::default()
    }

    /// The delays requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        self.slept.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Sleeper for RecordingSleeper {
    fn sleep(&self, d: Duration) {
        self.slept.lock().unwrap_or_else(|e| e.into_inner()).push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy::standard(6, 42);
        assert_eq!(p.schedule(), p.schedule());
        let q = RetryPolicy::standard(6, 43);
        assert_ne!(
            p.schedule(),
            q.schedule(),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn delays_grow_geometrically_within_jitter_bands() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_ms: 100,
            factor: 2.0,
            cap_ms: 10_000,
            jitter_seed: 7,
        };
        // Un-jittered: 100, 200, 400, 800. Equal jitter keeps each delay
        // in [d/2, d].
        for (i, want) in [(1u32, 100u64), (2, 200), (3, 400), (4, 800)] {
            let d = p.delay_ms(i);
            assert!(
                d >= want / 2 && d <= want,
                "attempt {i}: {d} outside [{}, {want}]",
                want / 2
            );
        }
    }

    #[test]
    fn cap_bounds_every_delay() {
        let p = RetryPolicy {
            max_attempts: 12,
            base_ms: 50,
            factor: 3.0,
            cap_ms: 300,
            jitter_seed: 1,
        };
        for a in 1..12 {
            assert!(p.delay_ms(a) <= 300);
        }
        // Deep attempts saturate at the cap's jitter band.
        assert!(p.delay_ms(11) >= 150);
    }

    #[test]
    fn attempt_zero_and_none_policy() {
        assert_eq!(RetryPolicy::standard(4, 9).delay_ms(0), 0);
        let none = RetryPolicy::none();
        assert_eq!(none.max_attempts, 1);
        assert!(none.schedule().is_empty());
    }

    #[test]
    fn recording_sleeper_records_in_order() {
        let s = RecordingSleeper::new();
        s.sleep(Duration::from_millis(5));
        s.sleep(Duration::from_millis(9));
        assert_eq!(
            s.slept(),
            vec![Duration::from_millis(5), Duration::from_millis(9)]
        );
    }
}

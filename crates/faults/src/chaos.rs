//! The chaos [`Vfs`]: deterministic failure and crash injection.
//!
//! A [`ChaosVfs`] wraps the real filesystem and consults a [`FaultPlan`]
//! before every operation. Plans address operations by global index, by
//! site label, by mutation class, or by a seeded coin flip — and every
//! schedule is replayable: the same plan over the same workload produces
//! the same op log, byte for byte.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::vfs::{RealVfs, Vfs, VfsOp};

/// Mixes an op index into a seed; the odd constant (2^64 / golden ratio)
/// keeps consecutive indices decorrelated, same trick as SplitMix64.
const INDEX_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// What the chaos layer should do to the operation stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// Pass everything through (used to record the golden op log).
    None,
    /// Crash-halt at the operation with this global index (0-based): a
    /// [`VfsOp::Write`] at the crash point leaves a **torn prefix** on
    /// disk — exactly what a power cut mid-`write(2)` leaves — then the
    /// fuse blows and every operation from there on fails, modeling the
    /// process being dead. Tests reopen the directory afterwards with
    /// [`RealVfs`] and assert the recovery invariants.
    CrashAt(u64),
    /// Fail (only) the operation with this global index with the given
    /// error kind; everything else passes through.
    FailAt {
        /// 0-based global operation index to fail.
        op: u64,
        /// The `io::ErrorKind` the injected error reports.
        kind: io::ErrorKind,
    },
    /// Fail the `nth` occurrence (0-based) of the named site.
    FailSite {
        /// Site label, e.g. `open.read.artifact`.
        site: &'static str,
        /// 0-based occurrence of that site to fail.
        nth: u64,
        /// The `io::ErrorKind` the injected error reports.
        kind: io::ErrorKind,
    },
    /// Fail every mutating operation (write/fsync/rename/remove/copy/
    /// mkdir) with `PermissionDenied`, while reads keep passing — a disk
    /// that went read-only, the degraded-mode trigger.
    FailWrites,
    /// Fail each operation independently with probability
    /// `fail_per_mille / 1000`, drawn from ChaCha8 keyed on
    /// `(seed, op index)` — bit-replayable per seed.
    Seeded {
        /// RNG seed; the same seed reproduces the same failure schedule.
        seed: u64,
        /// Failure probability in thousandths (e.g. `150` = 15%).
        fail_per_mille: u16,
    },
}

/// One entry of the chaos op log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global 0-based operation index.
    pub index: u64,
    /// Call-site label.
    pub site: &'static str,
    /// Operation class.
    pub op: VfsOp,
    /// Primary path of the operation.
    pub path: PathBuf,
    /// Whether the operation was allowed through and succeeded.
    pub ok: bool,
}

/// The injectable chaos filesystem. See [`FaultPlan`] for the dialects.
#[derive(Debug)]
pub struct ChaosVfs {
    inner: RealVfs,
    plan: Mutex<FaultPlan>,
    counter: AtomicU64,
    fuse_blown: AtomicBool,
    injected: AtomicU64,
    log: Mutex<Vec<OpRecord>>,
    site_counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl ChaosVfs {
    /// A chaos Vfs executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosVfs {
            inner: RealVfs,
            plan: Mutex::new(plan),
            counter: AtomicU64::new(0),
            fuse_blown: AtomicBool::new(false),
            injected: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            site_counts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Replace the plan mid-flight — lets a test open a store cleanly and
    /// only then arm write failures (the degraded-mode scenario).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.lock_plan() = plan;
    }

    /// Total operations attempted so far.
    pub fn ops(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// How many operations had a fault injected.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Whether a [`FaultPlan::CrashAt`] point has been reached.
    pub fn crashed(&self) -> bool {
        self.fuse_blown.load(Ordering::SeqCst)
    }

    /// A copy of the op log.
    pub fn log(&self) -> Vec<OpRecord> {
        self.lock(&self.log).clone()
    }

    /// The distinct site labels observed so far.
    pub fn sites_seen(&self) -> BTreeSet<&'static str> {
        self.lock(&self.site_counts).keys().copied().collect()
    }

    fn lock_plan(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        self.plan.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn injected_err(&self, kind: io::ErrorKind, site: &'static str, index: u64) -> io::Error {
        self.injected.fetch_add(1, Ordering::SeqCst);
        io::Error::new(kind, format!("injected fault at op {index} site {site}"))
    }

    /// The gate every operation passes through. `Verdict::Torn` is only
    /// ever returned for [`VfsOp::Write`].
    fn gate(&self, site: &'static str, op: VfsOp, index: u64) -> Verdict {
        if self.fuse_blown.load(Ordering::SeqCst) {
            return Verdict::Fail(io::ErrorKind::Other);
        }
        let plan = self.lock_plan().clone();
        match plan {
            FaultPlan::None => Verdict::Pass,
            FaultPlan::CrashAt(at) => {
                if index == at {
                    self.fuse_blown.store(true, Ordering::SeqCst);
                    if op == VfsOp::Write {
                        Verdict::Torn
                    } else {
                        Verdict::Fail(io::ErrorKind::Other)
                    }
                } else {
                    Verdict::Pass
                }
            }
            FaultPlan::FailAt { op: at, kind } => {
                if index == at {
                    Verdict::Fail(kind)
                } else {
                    Verdict::Pass
                }
            }
            FaultPlan::FailSite { site: s, nth, kind } => {
                let seen = self.lock(&self.site_counts).get(s).copied().unwrap_or(0);
                // site_counts is incremented by record() *after* the gate,
                // so `seen` is the 0-based ordinal of the current call.
                if s == site && seen == nth {
                    Verdict::Fail(kind)
                } else {
                    Verdict::Pass
                }
            }
            FaultPlan::FailWrites => {
                if op.is_mutation() {
                    // MSRV 1.75: `StorageFull` is not stable yet, and the
                    // closest stable-kind analogue of a read-only disk is
                    // a permission failure.
                    Verdict::Fail(io::ErrorKind::PermissionDenied)
                } else {
                    Verdict::Pass
                }
            }
            FaultPlan::Seeded {
                seed,
                fail_per_mille,
            } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(INDEX_MIX));
                if rng.gen_range(0..1000_u32) < u32::from(fail_per_mille) {
                    Verdict::Fail(io::ErrorKind::Other)
                } else {
                    Verdict::Pass
                }
            }
        }
    }

    fn record(&self, index: u64, site: &'static str, op: VfsOp, path: &Path, ok: bool) {
        *self.lock(&self.site_counts).entry(site).or_insert(0) += 1;
        self.lock(&self.log).push(OpRecord {
            index,
            site,
            op,
            path: path.to_path_buf(),
            ok,
        });
    }

    /// Run one operation through the gate: inject, tear, or pass through.
    fn run<T>(
        &self,
        site: &'static str,
        op: VfsOp,
        path: &Path,
        thru: impl FnOnce(&RealVfs) -> io::Result<T>,
        torn: impl FnOnce(&RealVfs) -> io::Result<()>,
    ) -> io::Result<T> {
        let index = self.counter.fetch_add(1, Ordering::SeqCst);
        let verdict = self.gate(site, op, index);
        let result = match verdict {
            Verdict::Pass => thru(&self.inner),
            Verdict::Fail(kind) => Err(self.injected_err(kind, site, index)),
            Verdict::Torn => {
                let _ = torn(&self.inner);
                Err(self.injected_err(io::ErrorKind::Other, site, index))
            }
        };
        self.record(index, site, op, path, result.is_ok());
        result
    }
}

#[derive(Debug)]
enum Verdict {
    Pass,
    Fail(io::ErrorKind),
    Torn,
}

impl Vfs for ChaosVfs {
    fn create_dir_all(&self, site: &'static str, path: &Path) -> io::Result<()> {
        self.run(
            site,
            VfsOp::CreateDirAll,
            path,
            |v| v.create_dir_all(site, path),
            |_| Ok(()),
        )
    }

    fn read_dir(&self, site: &'static str, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.run(
            site,
            VfsOp::ReadDir,
            path,
            |v| v.read_dir(site, path),
            |_| Ok(()),
        )
    }

    fn read(&self, site: &'static str, path: &Path) -> io::Result<Vec<u8>> {
        self.run(site, VfsOp::Read, path, |v| v.read(site, path), |_| Ok(()))
    }

    fn read_to_string(&self, site: &'static str, path: &Path) -> io::Result<String> {
        self.run(
            site,
            VfsOp::ReadToString,
            path,
            |v| v.read_to_string(site, path),
            |_| Ok(()),
        )
    }

    fn write(&self, site: &'static str, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.run(
            site,
            VfsOp::Write,
            path,
            |v| v.write(site, path, bytes),
            // The torn half-prefix a crash mid-write(2) leaves behind.
            |v| v.write(site, path, &bytes[..bytes.len() / 2]),
        )
    }

    fn fsync(&self, site: &'static str, path: &Path) -> io::Result<()> {
        self.run(
            site,
            VfsOp::Fsync,
            path,
            |v| v.fsync(site, path),
            |_| Ok(()),
        )
    }

    fn rename(&self, site: &'static str, from: &Path, to: &Path) -> io::Result<()> {
        self.run(
            site,
            VfsOp::Rename,
            from,
            |v| v.rename(site, from, to),
            |_| Ok(()),
        )
    }

    fn remove_file(&self, site: &'static str, path: &Path) -> io::Result<()> {
        self.run(
            site,
            VfsOp::RemoveFile,
            path,
            |v| v.remove_file(site, path),
            |_| Ok(()),
        )
    }

    fn copy(&self, site: &'static str, from: &Path, to: &Path) -> io::Result<u64> {
        self.run(
            site,
            VfsOp::Copy,
            from,
            |v| v.copy(site, from, to),
            |_| Ok(()),
        )
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("betalike-chaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn fail_at_hits_exactly_one_op() {
        let dir = temp("failat");
        let v = ChaosVfs::new(FaultPlan::FailAt {
            op: 1,
            kind: io::ErrorKind::PermissionDenied,
        });
        v.write("w", &dir.join("a"), b"aa").unwrap();
        let err = v.write("w", &dir.join("b"), b"bb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        v.write("w", &dir.join("c"), b"cc").unwrap();
        assert_eq!(v.ops(), 3);
        assert_eq!(v.injected(), 1);
        assert!(!v.exists(&dir.join("b")), "failed write must not land");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_site_counts_occurrences() {
        let dir = temp("failsite");
        let v = ChaosVfs::new(FaultPlan::FailSite {
            site: "s.write",
            nth: 1,
            kind: io::ErrorKind::WriteZero,
        });
        v.write("s.write", &dir.join("a"), b"aa").unwrap();
        assert!(v.write("other", &dir.join("x"), b"xx").is_ok());
        let err = v.write("s.write", &dir.join("b"), b"bb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        v.write("s.write", &dir.join("c"), b"cc").unwrap();
        assert_eq!(v.sites_seen().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_tears_the_write_and_blows_the_fuse() {
        let dir = temp("crash");
        let v = ChaosVfs::new(FaultPlan::CrashAt(0));
        let err = v.write("w", &dir.join("torn"), b"0123456789").unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert!(v.crashed());
        // Torn prefix landed: half the bytes.
        assert_eq!(std::fs::read(dir.join("torn")).unwrap(), b"01234");
        // Everything after the crash fails, including reads.
        assert!(v.read("r", &dir.join("torn")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_writes_spares_reads() {
        let dir = temp("failwrites");
        std::fs::write(dir.join("pre"), b"ok").unwrap();
        let v = ChaosVfs::new(FaultPlan::FailWrites);
        assert_eq!(
            v.write("w", &dir.join("new"), b"x").unwrap_err().kind(),
            io::ErrorKind::PermissionDenied
        );
        assert_eq!(v.read("r", &dir.join("pre")).unwrap(), b"ok");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_schedule_is_replayable() {
        let run = |seed: u64| {
            let dir = temp(&format!("seeded-{seed}"));
            let v = ChaosVfs::new(FaultPlan::Seeded {
                seed,
                fail_per_mille: 400,
            });
            for i in 0..40 {
                let _ = v.write("w", &dir.join(format!("f{i}")), b"data");
            }
            let outcomes: Vec<bool> = v.log().iter().map(|r| r.ok).collect();
            let _ = std::fs::remove_dir_all(&dir);
            outcomes
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !*ok));
    }

    #[test]
    fn set_plan_rearms_mid_flight() {
        let dir = temp("rearm");
        let v = ChaosVfs::new(FaultPlan::None);
        v.write("w", &dir.join("a"), b"aa").unwrap();
        v.set_plan(FaultPlan::FailWrites);
        assert!(v.write("w", &dir.join("b"), b"bb").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # betalike-faults
//!
//! Deterministic fault injection for the betalike workspace. The paper's
//! durability story — tempfile + fsync + rename, quarantine-on-corrupt —
//! is only a *claim* until something kills the store at every syscall and
//! checks what survives. This crate provides the machinery:
//!
//! * [`Vfs`] — the syscall-routing trait every I/O operation of the
//!   artifact store goes through. Each call site carries a stable
//!   `&'static str` site label, so failure schedules are addressable
//!   ("fail the 2nd fsync of the manifest") and coverage is enumerable
//!   (the torture suite asserts it observed *every* site the store
//!   exports, mirroring `AttackKind::ALL` in the attack battery).
//! * [`RealVfs`] — the zero-cost passthrough used in production.
//! * [`ChaosVfs`] — the injectable implementation: fails or crash-halts
//!   at the N-th operation according to a [`FaultPlan`], including a
//!   ChaCha8-seeded random schedule that is bit-replayable per seed. A
//!   "crash" is modeled as a blown fuse: the fatal write leaves a torn
//!   prefix on disk (exactly what a power cut mid-`write(2)` leaves) and
//!   every subsequent operation fails — the test then reopens the
//!   directory with [`RealVfs`] and asserts the recovery invariants.
//! * [`RetryPolicy`] / [`Sleeper`] — the deterministic jittered backoff
//!   the wire client retries retryable server errors with, with an
//!   injectable clock ([`RecordingSleeper`]) so schedules are assertable
//!   without real sleeping.
//!
//! See `DESIGN.md` §12 ("Failure model") for the injection-site table and
//! the crash-point matrix the `crates/faults/tests/torture.rs` suite runs.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod retry;
pub mod vfs;

pub use chaos::{ChaosVfs, FaultPlan, OpRecord};
pub use retry::{RecordingSleeper, RetryPolicy, Sleeper, ThreadSleeper};
pub use vfs::{RealVfs, Vfs, VfsOp};

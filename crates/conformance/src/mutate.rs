//! Mutation testing for the oracle: deliberately corrupted artifacts that
//! a sound verifier MUST reject.
//!
//! Each [`Mutation`] takes a *legitimately published* snapshot and returns
//! a corrupted copy (or `None` when the mutation does not apply to the
//! snapshot's form). The mutation suite (`tests/mutation.rs`, run by the
//! CI `conformance` job) asserts that every applicable mutation flips the
//! oracle's verdict to FAIL — if a mutation ever slips through, the oracle
//! lost its teeth and the suite goes red.
//!
//! The catalogue spans every trust boundary a stored artifact has:
//!
//! | mutation              | forges                       | caught by            |
//! |-----------------------|------------------------------|----------------------|
//! | `MoveRowAcrossEcs`    | EC membership                | `audit-match`        |
//! | `SwapSaPair`          | source SA values             | `audit-match` / `beta-bound` |
//! | `LoosenBeta`          | the claimed β, post-hoc      | `params-canonical`   |
//! | `DropRowFromEc`       | the cover (row vanishes)     | `cover`              |
//! | `DuplicateRowAcrossEcs`| the cover (row re-used)     | `cover`              |
//! | `TamperAudit`        | the published audit numbers  | `audit-match`        |
//! | `TamperPrior`         | the published plan priors    | `priors-exact`       |
//! | `OffSupportValue`     | the randomized SA column     | `column-in-support`  |
//! | `AlphaOutOfRange`     | the retention probabilities  | `alphas-range`       |

use betalike_store::{FormSnapshot, PublicationSnapshot};

/// One way to corrupt a published artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Moves a row from the largest EC into the EC that concentrates that
    /// row's SA value the most — the stored audit no longer matches the
    /// partition (and the β bound may break outright).
    MoveRowAcrossEcs,
    /// Swaps the SA values of two rows (in different ECs, different
    /// values) inside the stored source table.
    SwapSaPair,
    /// Raises the claimed β in the stored parameters without re-deriving
    /// the canonical string — the classic "loosen the guarantee post-hoc".
    LoosenBeta,
    /// Deletes the last row of the largest EC: that row is no longer
    /// covered by any EC.
    DropRowFromEc,
    /// Adds the first row of EC 0 to another EC as well.
    DuplicateRowAcrossEcs,
    /// Halves the stored audit's `max_beta` — the publication claims to be
    /// more private than it is.
    TamperAudit,
    /// Nudges one published prior off the table's true frequency.
    TamperPrior,
    /// Rewrites part of the randomized SA column to a value outside the
    /// plan's support.
    OffSupportValue,
    /// Sets a retention probability outside `[0, 1]`.
    AlphaOutOfRange,
}

impl Mutation {
    /// Every mutation, in catalogue order.
    pub const ALL: [Mutation; 9] = [
        Mutation::MoveRowAcrossEcs,
        Mutation::SwapSaPair,
        Mutation::LoosenBeta,
        Mutation::DropRowFromEc,
        Mutation::DuplicateRowAcrossEcs,
        Mutation::TamperAudit,
        Mutation::TamperPrior,
        Mutation::OffSupportValue,
        Mutation::AlphaOutOfRange,
    ];

    /// Stable name for test output.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::MoveRowAcrossEcs => "move-row-across-ecs",
            Mutation::SwapSaPair => "swap-sa-pair",
            Mutation::LoosenBeta => "loosen-beta",
            Mutation::DropRowFromEc => "drop-row-from-ec",
            Mutation::DuplicateRowAcrossEcs => "duplicate-row-across-ecs",
            Mutation::TamperAudit => "tamper-audit",
            Mutation::TamperPrior => "tamper-prior",
            Mutation::OffSupportValue => "off-support-value",
            Mutation::AlphaOutOfRange => "alpha-out-of-range",
        }
    }

    /// The oracle check expected to catch this mutation. A rejected
    /// artifact may fail more than one check, but the mutation suite
    /// requires this one to be among the failures — otherwise the check
    /// could silently lose its teeth behind a coincidental failure
    /// elsewhere.
    pub fn expected_check(self) -> &'static str {
        match self {
            Mutation::MoveRowAcrossEcs | Mutation::SwapSaPair | Mutation::TamperAudit => {
                "audit-match"
            }
            Mutation::LoosenBeta => "params-canonical",
            Mutation::DropRowFromEc | Mutation::DuplicateRowAcrossEcs => "cover",
            Mutation::TamperPrior => "priors-exact",
            Mutation::OffSupportValue => "column-in-support",
            Mutation::AlphaOutOfRange => "alphas-range",
        }
    }

    /// Applies the mutation, returning `None` when it does not fit the
    /// snapshot's form (e.g. a plan mutation on a generalized artifact).
    pub fn apply(self, snap: &PublicationSnapshot) -> Option<PublicationSnapshot> {
        let mut out = snap.clone();
        match self {
            Mutation::LoosenBeta => {
                // Applies to every form: the canonical string is shared.
                out.params.beta = out.params.beta * 2.0 + 1.0;
                Some(out)
            }
            Mutation::MoveRowAcrossEcs => {
                let sa = out.params.sa as usize;
                let sa_col: Vec<u32> = out.table.column(sa).to_vec();
                let FormSnapshot::Generalized { ecs } = &mut out.form else {
                    return None;
                };
                if ecs.len() < 2 {
                    return None;
                }
                // Take a row from the largest EC…
                let from = (0..ecs.len()).max_by_key(|&i| ecs[i].len())?;
                if ecs[from].len() < 2 {
                    return None;
                }
                let row = ecs[from].pop()?;
                let value = sa_col[row as usize];
                // …and concentrate it where its value is already densest.
                let to = (0..ecs.len()).filter(|&i| i != from).max_by(|&a, &b| {
                    let density = |i: usize| {
                        let hits = ecs[i]
                            .iter()
                            .filter(|&&r| sa_col[r as usize] == value)
                            .count();
                        hits as f64 / ecs[i].len() as f64
                    };
                    density(a).total_cmp(&density(b))
                })?;
                ecs[to].push(row);
                Some(out)
            }
            Mutation::SwapSaPair => {
                let sa = out.params.sa as usize;
                let FormSnapshot::Generalized { ecs } = &out.form else {
                    return None;
                };
                if ecs.len() < 2 {
                    return None;
                }
                let col = out.table.column(sa);
                // Find one row per EC pair with different SA values.
                let (a, b) = ecs[0]
                    .iter()
                    .flat_map(|&ra| ecs[1].iter().map(move |&rb| (ra, rb)))
                    .find(|&(ra, rb)| col[ra as usize] != col[rb as usize])?;
                let mut columns: Vec<Vec<u32>> = (0..out.table.schema().arity())
                    .map(|i| out.table.column(i).to_vec())
                    .collect();
                columns[sa].swap(a as usize, b as usize);
                out.table =
                    betalike_microdata::Table::from_columns(out.table.schema_arc(), columns)
                        .expect("swap stays in-domain");
                Some(out)
            }
            Mutation::DropRowFromEc => {
                let FormSnapshot::Generalized { ecs } = &mut out.form else {
                    return None;
                };
                let largest = (0..ecs.len()).max_by_key(|&i| ecs[i].len())?;
                if ecs[largest].len() < 2 {
                    return None;
                }
                ecs[largest].pop();
                Some(out)
            }
            Mutation::DuplicateRowAcrossEcs => {
                let FormSnapshot::Generalized { ecs } = &mut out.form else {
                    return None;
                };
                if ecs.len() < 2 {
                    return None;
                }
                let row = *ecs[0].first()?;
                ecs[1].push(row);
                Some(out)
            }
            Mutation::TamperAudit => {
                let audit = out.audit.as_mut()?;
                audit.max_beta *= 0.5;
                Some(out)
            }
            Mutation::TamperPrior => {
                let FormSnapshot::Perturbed { priors, .. } = &mut out.form else {
                    return None;
                };
                *priors.first_mut()? *= 1.0 + 1e-9;
                Some(out)
            }
            Mutation::OffSupportValue => {
                let domain = out
                    .table
                    .schema()
                    .attr(out.params.sa as usize)
                    .cardinality() as u32;
                let FormSnapshot::Perturbed {
                    sa_column, support, ..
                } = &mut out.form
                else {
                    return None;
                };
                // A domain code the support skips; artifacts over
                // full-support domains cannot host this mutation.
                let off = (0..domain).find(|v| support.binary_search(v).is_err())?;
                *sa_column.first_mut()? = off;
                Some(out)
            }
            Mutation::AlphaOutOfRange => {
                let FormSnapshot::Perturbed { alphas, .. } = &mut out.form else {
                    return None;
                };
                *alphas.first_mut()? = 1.5;
                Some(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::{publish_snapshot, PublishSpec, Scheme};

    #[test]
    fn catalogue_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            Mutation::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Mutation::ALL.len());
    }

    #[test]
    fn inapplicable_mutations_return_none() {
        let spec = PublishSpec::synthetic(150, 3, Scheme::Anatomy);
        let snap = publish_snapshot(&spec.synthetic_table(), &spec).unwrap();
        assert!(Mutation::MoveRowAcrossEcs.apply(&snap).is_none());
        assert!(Mutation::TamperPrior.apply(&snap).is_none());
        assert!(Mutation::TamperAudit.apply(&snap).is_none());
        // LoosenBeta applies to every form.
        assert!(Mutation::LoosenBeta.apply(&snap).is_some());
    }
}

//! # betalike-conformance
//!
//! An *independent* conformance oracle for published β-likeness artifacts,
//! plus the adversarial battery and the deterministic artifact fuzzer that
//! exercise it. The paper's entire value proposition is the guarantee —
//! every published table must satisfy β-likeness against an adversary with
//! arbitrary background knowledge (Cao & Karras, VLDB 2012) — so the
//! guarantee deserves a checker that shares **no code** with the pipeline
//! it audits: a bug in `betalike-metrics` or `betalike` (core) cannot also
//! hide in the oracle, because the oracle recomputes everything from raw
//! rows.
//!
//! The crate has two strictly separated halves (enforced by review, spelled
//! out in `DESIGN.md` §10):
//!
//! * **The oracle** ([`oracle`], [`report`]) — re-derives per-EC SA
//!   distributions, the relative-gain β, information loss and (for the
//!   perturbation scheme) the plan's distribution invariants directly from
//!   the published artifact. It depends only on `betalike-microdata` (raw
//!   data access: columns, schema, hierarchy navigation) and
//!   `betalike-store` (decoding `.bpub` documents). It never calls
//!   `betalike-metrics` or `betalike` (core) functions — the structs those
//!   crates persist ([`betalike_metrics::PartitionAudit`]) appear only as
//!   *claims under test*.
//! * **The harness** ([`battery`], [`publish`], [`fuzz`], [`mutate`]) —
//!   drives the system under test: publishes artifacts through the real
//!   pipeline, runs every adversary in `betalike-attacks` against them,
//!   synthesizes random publications, and deliberately corrupts artifacts
//!   to prove the oracle has teeth.
//!
//! Entry points:
//!
//! * [`verify_snapshot`] / [`verify_bytes`] — full verification of a
//!   decoded / serialized `.bpub` publication;
//! * [`verify_generalized`] / [`verify_perturbed`] / [`verify_anatomy`] —
//!   in-memory verification of one publication form;
//! * [`run_battery_snapshot`] — the attack battery over a publication;
//! * [`fuzz_oracle`] — the deterministic fuzz loop CI runs.
//!
//! The `betalike-verify` binary (in `betalike-server`, which layers the
//! TCP path on top) exposes all of this on the command line; see the
//! README's "Verifying a publication" quickstart.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod battery;
pub mod fuzz;
pub mod mutate;
pub mod oracle;
pub mod publish;
pub mod report;

pub use battery::{run_battery_snapshot, AttackVerdict, BatteryReport};
pub use fuzz::{fuzz_oracle, FuzzOutcome};
pub use mutate::Mutation;
pub use oracle::{
    verify_anatomy, verify_bytes, verify_generalized, verify_perturbed, verify_snapshot,
};
pub use publish::{publish_snapshot, PublishSpec, Scheme};
pub use report::{Check, OracleReport};

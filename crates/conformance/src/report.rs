//! The oracle's verdict: a named list of checks plus the re-derived
//! headline numbers.
//!
//! A report never panics information away: every invariant the oracle
//! evaluated appears as a [`Check`] with a human-readable detail, so a CI
//! log (or the `betalike-verify --out` JSON artifact) names exactly which
//! invariant a corrupted artifact broke.

use betalike_microdata::json::Json;

/// One evaluated invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Stable machine-readable name (e.g. `beta-bound`, `cover`).
    pub name: &'static str,
    /// Whether the invariant held.
    pub pass: bool,
    /// Human-readable evidence: the first violation found, or a short
    /// summary of what was checked.
    pub detail: String,
}

/// The oracle's full verdict on one published artifact.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The artifact handle (empty for in-memory verifications that have
    /// none).
    pub handle: String,
    /// The publication form (`generalized` / `perturbed` / `anatomy`).
    pub kind: String,
    /// Source-table rows.
    pub rows: usize,
    /// Equivalence classes, for generalization-based forms.
    pub num_ecs: Option<usize>,
    /// The β the publication claims to satisfy (`None` for schemes without
    /// a β parameter: SABRE, Anatomy).
    pub claimed_beta: Option<f64>,
    /// The re-derived "real β": max over ECs of the max relative gain
    /// (`None` for forms without ECs).
    pub achieved_beta: Option<f64>,
    /// The re-derived average information loss (Equation 5), for
    /// generalization-based forms.
    pub avg_info_loss: Option<f64>,
    /// Every invariant evaluated, in evaluation order.
    pub checks: Vec<Check>,
}

impl OracleReport {
    pub(crate) fn new(kind: &str, rows: usize) -> Self {
        OracleReport {
            handle: String::new(),
            kind: kind.to_string(),
            rows,
            num_ecs: None,
            claimed_beta: None,
            achieved_beta: None,
            avg_info_loss: None,
            checks: Vec::new(),
        }
    }

    /// Records one evaluated invariant.
    pub(crate) fn check(&mut self, name: &'static str, pass: bool, detail: impl Into<String>) {
        self.checks.push(Check {
            name,
            pass,
            detail: detail.into(),
        });
    }

    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The checks that failed, in evaluation order.
    pub fn failures(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// The check named `name`, if the oracle evaluated it.
    pub fn find(&self, name: &str) -> Option<&Check> {
        self.checks.iter().find(|c| c.name == name)
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        let verdict = if self.pass() { "PASS" } else { "FAIL" };
        let failed: Vec<&str> = self.failures().iter().map(|c| c.name).collect();
        format!(
            "{verdict} kind={} rows={}{}{}{}",
            self.kind,
            self.rows,
            self.num_ecs
                .map(|n| format!(" ecs={n}"))
                .unwrap_or_default(),
            self.achieved_beta
                .map(|b| format!(" achieved_beta={b:.4}"))
                .unwrap_or_default(),
            if failed.is_empty() {
                String::new()
            } else {
                format!(" failed=[{}]", failed.join(","))
            }
        )
    }

    /// The machine-readable verdict document.
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        let checks = self
            .checks
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(c.name.into())),
                    ("pass".into(), Json::Bool(c.pass)),
                    ("detail".into(), Json::Str(c.detail.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("handle".into(), Json::Str(self.handle.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("rows".into(), Json::Num(self.rows as f64)),
            (
                "num_ecs".into(),
                self.num_ecs.map_or(Json::Null, |n| Json::Num(n as f64)),
            ),
            ("claimed_beta".into(), opt_num(self.claimed_beta)),
            ("achieved_beta".into(), opt_num(self.achieved_beta)),
            ("avg_info_loss".into(), opt_num(self.avg_info_loss)),
            ("pass".into(), Json::Bool(self.pass())),
            ("checks".into(), Json::Arr(checks)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_fail_and_lookup() {
        let mut r = OracleReport::new("generalized", 10);
        r.check("cover", true, "10 rows covered once");
        assert!(r.pass());
        r.check("beta-bound", false, "EC 3 value 2 over cap");
        assert!(!r.pass());
        assert_eq!(r.failures().len(), 1);
        assert!(!r.find("beta-bound").unwrap().pass);
        assert!(r.find("missing").is_none());
        assert!(r.summary().contains("FAIL"));
        assert!(r.summary().contains("beta-bound"));
    }

    #[test]
    fn json_shape() {
        let mut r = OracleReport::new("perturbed", 5);
        r.achieved_beta = None;
        r.claimed_beta = Some(4.0);
        r.check("alphas-range", true, "3 alphas in [0, 1]");
        let doc = r.to_json();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("perturbed"));
        assert_eq!(doc.get("pass").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("claimed_beta").unwrap().as_f64(), Some(4.0));
        assert!(matches!(doc.get("achieved_beta"), Some(Json::Null)));
        assert_eq!(doc.get("checks").unwrap().as_arr().unwrap().len(), 1);
    }
}

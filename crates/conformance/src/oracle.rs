//! The from-first-principles β-likeness verifier.
//!
//! Everything here is re-derived from raw rows using only
//! `betalike-microdata` data access (columns, schema, hierarchy
//! navigation) and `betalike-store` decoding — deliberately **not**
//! [`betalike_metrics::audit`] or the `betalike` (core) model/perturbation
//! code, so a shared bug cannot pass silently. The formulas are taken from
//! the paper, not from the workspace:
//!
//! * the enhanced β bound (Definition 3 / Equation 1): an EC distribution
//!   `Q` is acceptable against the table distribution `P` iff
//!   `q_i ≤ (1 + min{β, −ln p_i}) · p_i` for every value;
//! * the relative gain `(q_i − p_i)/p_i` whose maximum is the "real β";
//! * information loss (Equations 2–5): numeric span over domain span,
//!   hierarchy-subtree leaf share, equal attribute weights, size-weighted
//!   average;
//! * the perturbation invariants (Section 5 / Theorems 2–3): published
//!   priors equal the table's SA frequencies, posterior caps equal
//!   `f(p_i)`, amplification factors equal `(ρ2/ρ1)(1−ρ1)/(1−ρ2)`, the
//!   worst-case posterior implied by the retention probabilities stays
//!   under every cap, and the randomized column stays inside the support.
//!
//! When the artifact carries a publish-time audit, the oracle recomputes
//! all ten of its fields and demands **bit-for-bit** agreement: both sides
//! evaluate the same textbook formulas in their natural left-to-right
//! order, so any divergence is a real bug in one of them (or a tampered
//! claim), not floating-point noise. The cross-validation test in
//! `tests/cross_validation.rs` pins this equivalence on every seeded
//! dataset.

use crate::report::OracleReport;
use betalike_metrics::audit::PartitionAudit;
use betalike_microdata::hash::fnv1a64;
use betalike_microdata::{AttrKind, Table};
use betalike_store::{FormSnapshot, PublicationSnapshot, StoreError};

/// Tolerance for the worst-case-posterior check of the perturbation form —
/// the plan construction itself verifies against `cap + 1e-12`, so the
/// oracle allows the same slack.
const POSTERIOR_EPS: f64 = 1e-12;

/// Tolerance for `achieved β ≤ claimed β`: the per-value cap check is
/// exact; this derived comparison only guards against gross skew.
const ACHIEVED_EPS: f64 = 1e-9;

// ---------------------------------------------------------------------------
// Independent distribution arithmetic.
// ---------------------------------------------------------------------------

/// Histogram of `col[r]` over `rows` (or the whole column), counted here
/// rather than through `SaDistribution`.
fn counts_of(col: &[u32], rows: Option<&[u32]>, m: usize) -> Vec<u64> {
    let mut counts = vec![0u64; m];
    match rows {
        None => {
            for &v in col {
                counts[v as usize] += 1;
            }
        }
        Some(rows) => {
            for &r in rows {
                counts[col[r as usize] as usize] += 1;
            }
        }
    }
    counts
}

/// Frequencies `p_i = N_i / total`.
fn freqs_of(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// The enhanced-bound EC-frequency cap `f(p) = (1 + min{β, −ln p}) · p`
/// (Equation 1). `f(0) = 0`: a value absent from the table may not appear
/// in any EC. Shared with the (harness-side) battery so the bound the
/// attacks are asserted against is the bound the oracle enforces.
pub(crate) fn enhanced_cap(beta: f64, p: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        (1.0 + beta.min(-p.ln())) * p
    }
}

/// Max relative gain `max_i (q_i − p_i)/p_i` over values that gain; `+∞`
/// when a value with `p_i = 0` appears.
fn max_gain(p: &[f64], q: &[f64]) -> f64 {
    let mut worst: f64 = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if qi > pi {
            if pi <= 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max((qi - pi) / pi);
        }
    }
    worst
}

/// Equal-distance EMD (total variation): `½ Σ |p_i − q_i|`.
fn emd_equal(p: &[f64], q: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        sum += (a - b).abs();
    }
    0.5 * sum
}

/// δ-disclosure reading: `max_i |ln(q_i/p_i)|` over values with `p_i > 0`,
/// `+∞` when such a value is absent from the EC.
fn delta_reading(p: &[f64], q: &[f64]) -> f64 {
    let mut worst: f64 = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max((qi / pi).ln().abs());
        }
    }
    worst
}

/// `1 / max_i q_i` (probabilistic ℓ-diversity), 0 for an empty histogram.
fn inv_max_freq(q: &[f64]) -> f64 {
    let mut max = 0.0f64;
    for &f in q {
        max = max.max(f);
    }
    if max > 0.0 {
        1.0 / max
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Independent information loss (Equations 2–5).
// ---------------------------------------------------------------------------

/// Information loss of one attribute over a row set: numeric span over the
/// domain span, or the leaf share of the hierarchy subtree the extent
/// generalizes to (0 for a single value).
fn attr_loss(table: &Table, attr: usize, rows: &[u32]) -> f64 {
    let col = table.column(attr);
    let mut it = rows.iter().map(|&r| col[r as usize]);
    let Some(first) = it.next() else {
        return 0.0;
    };
    let (mut lo, mut hi) = (first, first);
    for v in it {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    match table.schema().attr(attr).kind() {
        AttrKind::Numeric { values } => {
            let full = values[values.len() - 1] - values[0];
            if full == 0.0 {
                0.0
            } else {
                (values[hi as usize] - values[lo as usize]) / full
            }
        }
        AttrKind::Categorical { hierarchy } => {
            // Own LCA walk: climb from the low leaf until the subtree's
            // pre-order leaf range covers the high leaf.
            let mut node = hierarchy.leaf_node(lo);
            while hierarchy.leaf_range(node).1 < hi {
                node = hierarchy.parent(node).expect("root covers all leaves");
            }
            let covered = hierarchy.leaves_under(node);
            if covered == 1 {
                0.0
            } else {
                covered as f64 / hierarchy.num_leaves() as f64
            }
        }
    }
}

/// Average information loss (Equation 5) with equal attribute weights.
fn average_info_loss(table: &Table, qi: &[usize], ecs: &[Vec<u32>]) -> f64 {
    let total: usize = ecs.iter().map(Vec::len).sum();
    if total == 0 || qi.is_empty() {
        return 0.0;
    }
    let w = 1.0 / qi.len() as f64;
    let mut sum = 0.0;
    for ec in ecs {
        let mut il = 0.0;
        for &a in qi {
            il += w * attr_loss(table, a, ec);
        }
        sum += ec.len() as f64 * il;
    }
    sum / total as f64
}

// ---------------------------------------------------------------------------
// Generalized publications.
// ---------------------------------------------------------------------------

/// The per-EC readings the oracle reduces over (mirrors the shape of the
/// published audit so the cross-check can be field-for-field).
struct EcReading {
    gain: f64,
    closeness: f64,
    distinct: usize,
    inv_max_freq: f64,
    delta: f64,
    size: usize,
}

/// Verifies a generalization-based publication from its raw parts.
///
/// `beta` is the claimed bound (`None` for schemes without one, e.g.
/// SABRE: the β checks are skipped but cover, audit cross-validation and
/// loss accounting still run). `stored_audit` is the publish-time audit to
/// cross-validate bit-for-bit, if the artifact carries one.
pub fn verify_generalized(
    table: &Table,
    qi: &[usize],
    sa: usize,
    beta: Option<f64>,
    ecs: &[Vec<u32>],
    stored_audit: Option<&PartitionAudit>,
) -> OracleReport {
    let mut report = OracleReport::new("generalized", table.num_rows());
    report.num_ecs = Some(ecs.len());
    report.claimed_beta = beta;

    // Structural validity first: attribute roles, then the cover.
    let arity = table.schema().arity();
    let roles_ok = sa < arity && qi.iter().all(|&a| a < arity) && !qi.contains(&sa);
    report.check(
        "attr-roles",
        roles_ok,
        format!("sa={sa}, qi={qi:?}, arity={arity}"),
    );
    if !roles_ok {
        return report;
    }

    let empty_ecs = ecs.iter().filter(|ec| ec.is_empty()).count();
    report.check(
        "ecs-nonempty",
        empty_ecs == 0,
        if empty_ecs == 0 {
            format!("{} non-empty ECs", ecs.len())
        } else {
            format!("{empty_ecs} empty EC(s)")
        },
    );

    let n = table.num_rows();
    let mut seen = vec![false; n];
    let mut cover_problem = None;
    let mut rows_in_range = true;
    'cover: for (i, ec) in ecs.iter().enumerate() {
        for &r in ec {
            let r = r as usize;
            if r >= n {
                cover_problem = Some(format!("EC {i} references row {r} >= {n}"));
                rows_in_range = false;
                break 'cover;
            }
            if seen[r] {
                cover_problem = Some(format!("row {r} occurs in more than one EC"));
                break 'cover;
            }
            seen[r] = true;
        }
    }
    if cover_problem.is_none() {
        if let Some(missing) = seen.iter().position(|&s| !s) {
            cover_problem = Some(format!("row {missing} is not covered by any EC"));
        }
    }
    report.check(
        "cover",
        cover_problem.is_none(),
        cover_problem.unwrap_or_else(|| format!("{n} rows covered exactly once")),
    );
    if !rows_in_range {
        // Per-EC distributions are not even well-defined; stop before
        // indexing out of the table.
        return report;
    }

    // Distributions: table P, per-EC Q, all counted here.
    let col = table.column(sa);
    let m = table.schema().attr(sa).cardinality();
    let p = freqs_of(&counts_of(col, None, m));

    // One histogram pass per EC feeds every reading *and* the β bound —
    // the per-EC scan dominates the oracle's cost on large artifacts.
    let mut violation = None;
    let readings: Vec<EcReading> = ecs
        .iter()
        .enumerate()
        .map(|(i, ec)| {
            let q = freqs_of(&counts_of(col, Some(ec), m));
            // The β bound (Definition 3), checked per value while the
            // histogram is hot.
            if let Some(beta) = beta {
                if violation.is_none() {
                    for (v, (&pv, &qv)) in p.iter().zip(&q).enumerate() {
                        if qv > pv && qv > enhanced_cap(beta, pv) {
                            violation = Some(format!(
                                "EC {i}: value {v} at frequency {qv:.6} exceeds its cap \
                                 {:.6} (table frequency {pv:.6}, beta {beta})",
                                enhanced_cap(beta, pv)
                            ));
                            break;
                        }
                    }
                }
            }
            let distinct = q.iter().filter(|&&f| f > 0.0).count();
            EcReading {
                gain: max_gain(&p, &q),
                closeness: emd_equal(&p, &q),
                distinct,
                inv_max_freq: inv_max_freq(&q),
                delta: delta_reading(&p, &q),
                size: ec.len(),
            }
        })
        .collect();

    if let Some(beta) = beta {
        report.check(
            "beta-bound",
            violation.is_none(),
            violation.unwrap_or_else(|| {
                format!("every value in every EC under its Equation-1 cap at beta {beta}")
            }),
        );
    }

    // The headline numbers, reduced in EC order (the natural evaluation
    // order, which is also what makes the bit-for-bit audit cross-check
    // possible).
    let mut achieved: f64 = 0.0;
    let mut avg_gain = 0.0;
    let mut max_closeness: f64 = 0.0;
    let mut avg_closeness = 0.0;
    let mut min_distinct = usize::MAX;
    let mut avg_distinct = 0.0;
    let mut min_inv = f64::INFINITY;
    let mut max_delta: f64 = 0.0;
    let mut min_size = usize::MAX;
    for r in &readings {
        achieved = achieved.max(r.gain);
        avg_gain += r.gain;
        max_closeness = max_closeness.max(r.closeness);
        avg_closeness += r.closeness;
        min_distinct = min_distinct.min(r.distinct);
        avg_distinct += r.distinct as f64;
        min_inv = min_inv.min(r.inv_max_freq);
        max_delta = max_delta.max(r.delta);
        min_size = min_size.min(r.size);
    }
    if readings.is_empty() {
        min_distinct = 0;
        min_inv = 0.0;
        min_size = 0;
    } else {
        let k = readings.len() as f64;
        avg_gain /= k;
        avg_closeness /= k;
        avg_distinct /= k;
    }
    report.achieved_beta = Some(achieved);
    report.avg_info_loss = Some(average_info_loss(table, qi, ecs));

    if let Some(beta) = beta {
        report.check(
            "achieved-beta",
            achieved <= beta + ACHIEVED_EPS,
            format!("achieved beta {achieved:.6} vs claimed {beta}"),
        );
    }

    // Bit-for-bit cross-validation of the publish-time audit.
    if let Some(audit) = stored_audit {
        let mut mismatches = Vec::new();
        let mut float = |name: &str, stored: f64, recomputed: f64| {
            if stored.to_bits() != recomputed.to_bits() {
                mismatches.push(format!("{name}: stored {stored}, recomputed {recomputed}"));
            }
        };
        float("max_beta", audit.max_beta, achieved);
        float("avg_beta", audit.avg_beta, avg_gain);
        float("max_closeness", audit.max_closeness, max_closeness);
        float("avg_closeness", audit.avg_closeness, avg_closeness);
        float("avg_distinct_l", audit.avg_distinct_l, avg_distinct);
        float("min_inv_max_freq_l", audit.min_inv_max_freq_l, min_inv);
        float("max_delta", audit.max_delta, max_delta);
        for (name, stored, recomputed) in [
            ("min_distinct_l", audit.min_distinct_l, min_distinct),
            ("min_ec_size", audit.min_ec_size, min_size),
            ("num_ecs", audit.num_ecs, ecs.len()),
        ] {
            if stored != recomputed {
                mismatches.push(format!("{name}: stored {stored}, recomputed {recomputed}"));
            }
        }
        report.check(
            "audit-match",
            mismatches.is_empty(),
            if mismatches.is_empty() {
                "all 10 stored audit fields recomputed bit-identically".to_string()
            } else {
                mismatches.join("; ")
            },
        );
    }

    report
}

// ---------------------------------------------------------------------------
// Perturbation publications.
// ---------------------------------------------------------------------------

/// Verifies a perturbation publication's stored parts against the source
/// table: the plan's distribution invariants (Section 5) and the
/// randomized column's membership and statistical plausibility.
#[allow(clippy::too_many_arguments)] // mirrors the stored form's series
pub fn verify_perturbed(
    table: &Table,
    sa: usize,
    beta: f64,
    sa_column: &[u32],
    support: &[u32],
    priors: &[f64],
    caps: &[f64],
    gammas: &[f64],
    alphas: &[f64],
) -> OracleReport {
    let mut report = OracleReport::new("perturbed", table.num_rows());
    report.claimed_beta = Some(beta);

    let arity = table.schema().arity();
    report.check("attr-roles", sa < arity, format!("sa={sa}, arity={arity}"));
    if sa >= arity {
        return report;
    }

    let m = support.len();
    let aligned = priors.len() == m && caps.len() == m && gammas.len() == m && alphas.len() == m;
    report.check(
        "series-aligned",
        aligned,
        format!(
            "support {m}, priors {}, caps {}, gammas {}, alphas {}",
            priors.len(),
            caps.len(),
            gammas.len(),
            alphas.len()
        ),
    );
    if !aligned {
        return report;
    }

    // The support must be exactly the table's non-zero SA values,
    // ascending.
    let col = table.column(sa);
    let domain = table.schema().attr(sa).cardinality();
    let counts = counts_of(col, None, domain);
    let expected_support: Vec<u32> = (0..domain as u32)
        .filter(|&v| counts[v as usize] > 0)
        .collect();
    report.check(
        "support-matches-table",
        support == expected_support.as_slice(),
        format!(
            "published support has {m} values, table has {} with non-zero count",
            expected_support.len()
        ),
    );
    if support != expected_support.as_slice() {
        return report;
    }

    // Priors are the table frequencies, bit-for-bit.
    let total: u64 = counts.iter().sum();
    let mut prior_mismatch = None;
    for (i, &v) in support.iter().enumerate() {
        let expected = counts[v as usize] as f64 / total as f64;
        if priors[i].to_bits() != expected.to_bits() {
            prior_mismatch = Some(format!(
                "prior[{i}] (value {v}): published {}, table frequency {expected}",
                priors[i]
            ));
            break;
        }
    }
    report.check(
        "priors-exact",
        prior_mismatch.is_none(),
        prior_mismatch.unwrap_or_else(|| format!("{m} priors equal the table frequencies")),
    );

    // Caps and amplification factors follow Equation 1 / Theorem 2,
    // bit-for-bit.
    let mut formula_mismatch = None;
    for i in 0..m {
        let p = priors[i];
        let cap = enhanced_cap(beta, p);
        if caps[i].to_bits() != cap.to_bits() {
            formula_mismatch = Some(format!("cap[{i}]: published {}, f(p) = {cap}", caps[i]));
            break;
        }
        let gamma = (cap / p) * (1.0 - p) / (1.0 - cap);
        if gammas[i].to_bits() != gamma.to_bits() {
            formula_mismatch = Some(format!(
                "gamma[{i}]: published {}, Theorem-2 value {gamma}",
                gammas[i]
            ));
            break;
        }
    }
    report.check(
        "plan-formulas",
        formula_mismatch.is_none(),
        formula_mismatch
            .unwrap_or_else(|| "caps and gammas match Equation 1 / Theorem 2".to_string()),
    );

    let alphas_ok = alphas.iter().all(|&a| (0.0..=1.0).contains(&a));
    report.check(
        "alphas-range",
        alphas_ok,
        format!("{m} retention probabilities in [0, 1]: {alphas_ok}"),
    );

    // Worst-case posterior for every (true value, observed value) pair,
    // from the transition probabilities the alphas imply (Equation 12).
    if alphas_ok {
        let mf = m as f64;
        let pr = |j: usize, v: usize| {
            if j == v {
                alphas[j] + (1.0 - alphas[j]) / mf
            } else {
                (1.0 - alphas[j]) / mf
            }
        };
        let mut worst = None;
        'posterior: for v in 0..m {
            let mut seen = 0.0;
            for (j, &pj) in priors.iter().enumerate() {
                seen += pj * pr(j, v);
            }
            if seen <= 0.0 {
                worst = Some(format!("observed value {v} has zero total probability"));
                break;
            }
            for i in 0..m {
                let posterior = priors[i] * pr(i, v) / seen;
                if posterior > caps[i] + POSTERIOR_EPS {
                    worst = Some(format!(
                        "posterior({i}|observed {v}) = {posterior:.6} exceeds cap {:.6}",
                        caps[i]
                    ));
                    break 'posterior;
                }
            }
        }
        report.check(
            "posterior-caps",
            worst.is_none(),
            worst
                .unwrap_or_else(|| format!("all {m}x{m} posteriors under their Definition-6 caps")),
        );
    }

    // The randomized column: row-aligned and inside the support.
    let aligned_rows = sa_column.len() == table.num_rows();
    report.check(
        "column-aligned",
        aligned_rows,
        format!(
            "randomized column has {} rows, table {}",
            sa_column.len(),
            table.num_rows()
        ),
    );
    let in_support = sa_column.iter().all(|v| support.binary_search(v).is_ok());
    report.check(
        "column-in-support",
        in_support,
        if in_support {
            "every randomized value is in the support".to_string()
        } else {
            "randomized column contains values outside the support".to_string()
        },
    );

    // Statistical plausibility: observed per-value counts within 6σ of the
    // expectation the plan implies. A single swapped value is (correctly)
    // invisible; gross tampering with the randomized column is not.
    if aligned_rows && in_support && alphas_ok {
        let mf = m as f64;
        let pr = |j: usize, v: usize| {
            if j == v {
                alphas[j] + (1.0 - alphas[j]) / mf
            } else {
                (1.0 - alphas[j]) / mf
            }
        };
        let mut observed = vec![0u64; m];
        for &v in sa_column {
            let idx = support.binary_search(&v).expect("checked in-support");
            observed[idx] += 1;
        }
        let mut implausible = None;
        for v in 0..m {
            let mut expected = 0.0;
            let mut variance = 0.0;
            for (j, &sv) in support.iter().enumerate() {
                let nj = counts[sv as usize] as f64;
                let p = pr(j, v);
                expected += nj * p;
                variance += nj * p * (1.0 - p);
            }
            let slack = 6.0 * variance.sqrt() + 1.0;
            let diff = (observed[v] as f64 - expected).abs();
            if diff > slack {
                implausible = Some(format!(
                    "observed count of support value {} is {} vs expectation {expected:.1} \
                     (allowed deviation {slack:.1})",
                    support[v], observed[v]
                ));
                break;
            }
        }
        report.check(
            "column-plausible",
            implausible.is_none(),
            implausible.unwrap_or_else(|| {
                "observed counts within 6 sigma of the plan's expectation".to_string()
            }),
        );
    }

    report
}

// ---------------------------------------------------------------------------
// Anatomy publications.
// ---------------------------------------------------------------------------

/// Verifies an Anatomy-style publication: the form derives everything from
/// the stored table, so the only invariants are the attribute roles and
/// the (trivially zero) relative gain of publishing the global histogram.
pub fn verify_anatomy(table: &Table, sa: usize) -> OracleReport {
    let mut report = OracleReport::new("anatomy", table.num_rows());
    let arity = table.schema().arity();
    report.check("attr-roles", sa < arity, format!("sa={sa}, arity={arity}"));
    // The published SA information is the global distribution itself: the
    // adversary's posterior equals the prior, gain 0 by definition.
    report.achieved_beta = Some(0.0);
    report.check(
        "global-histogram",
        true,
        "publishes the table-level SA histogram: relative gain 0 by definition",
    );
    report
}

// ---------------------------------------------------------------------------
// Snapshot-level verification.
// ---------------------------------------------------------------------------

/// Schemes that claim a β (the others are verified structurally only).
/// Exhaustive over every scheme the wire knows (X2): an unknown algo
/// claims nothing, and the form-consistency check reports it.
fn claimed_beta(algo: &str, beta: f64) -> Option<f64> {
    match algo {
        "burel" | "mondrian" | "perturb" => Some(beta),
        "sabre" | "anatomy" => None,
        _ => None,
    }
}

/// Full verification of a decoded publication: parameter integrity (the
/// content address and canonical string), form/algorithm consistency, and
/// the form-specific invariants above.
pub fn verify_snapshot(snap: &PublicationSnapshot) -> OracleReport {
    let p = &snap.params;

    // Parameter integrity first: the canonical string must embed exactly
    // the stored parameters, and the handle must be its FNV-1a content
    // address — loosening β (or any other knob) post-hoc breaks one or the
    // other.
    let expected_canonical = format!(
        "{}|algo={}|qi={}|beta={}|t={}|seed={}",
        p.dataset_key, p.algo, p.qi_prefix, p.beta, p.t, p.seed
    );
    let canonical_ok = p.canonical == expected_canonical;
    let expected_handle = format!("pub-{:016x}", fnv1a64(p.canonical.as_bytes()));
    let handle_ok = p.handle == expected_handle;

    let beta = claimed_beta(&p.algo, p.beta);
    let mut report = match &snap.form {
        FormSnapshot::Generalized { ecs } => {
            let qi: Vec<usize> = p.qi.iter().map(|&a| a as usize).collect();
            verify_generalized(
                &snap.table,
                &qi,
                p.sa as usize,
                beta,
                ecs,
                snap.audit.as_ref(),
            )
        }
        FormSnapshot::Perturbed {
            sa_column,
            support,
            priors,
            caps,
            gammas,
            alphas,
        } => verify_perturbed(
            &snap.table,
            p.sa as usize,
            p.beta,
            sa_column,
            support,
            priors,
            caps,
            gammas,
            alphas,
        ),
        FormSnapshot::Anatomy => verify_anatomy(&snap.table, p.sa as usize),
    };
    report.handle = p.handle.clone();

    report.check(
        "params-canonical",
        canonical_ok,
        if canonical_ok {
            "canonical string embeds the stored parameters".to_string()
        } else {
            format!(
                "stored canonical `{}` differs from the parameters' `{expected_canonical}`",
                p.canonical
            )
        },
    );
    report.check(
        "handle-hash",
        handle_ok,
        if handle_ok {
            "handle is the canonical string's content address".to_string()
        } else {
            format!(
                "stored handle `{}`, content address `{expected_handle}`",
                p.handle
            )
        },
    );

    let form_algo_ok = matches!(
        (&snap.form, p.algo.as_str()),
        (
            FormSnapshot::Generalized { .. },
            "burel" | "sabre" | "mondrian"
        ) | (FormSnapshot::Perturbed { .. }, "perturb")
            | (FormSnapshot::Anatomy, "anatomy")
    );
    report.check(
        "form-algo",
        form_algo_ok,
        format!("form `{}` under algo `{}`", snap.form.kind(), p.algo),
    );

    // Forms without equivalence classes must not carry a partition audit.
    if !matches!(snap.form, FormSnapshot::Generalized { .. }) {
        report.check(
            "audit-absent",
            snap.audit.is_none(),
            "forms without ECs store no partition audit",
        );
    }

    report
}

/// [`verify_snapshot`] over a serialized `.bpub` document.
///
/// # Errors
///
/// Propagates the store reader's structured decode errors (truncation,
/// corruption, version skew) — an unreadable artifact is reported as such
/// rather than as a conformance failure.
pub fn verify_bytes(bytes: &[u8]) -> Result<OracleReport, StoreError> {
    let snap = betalike_store::publication_from_slice(bytes)?;
    Ok(verify_snapshot(&snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, patients_table};
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    #[test]
    fn cap_formula_matches_the_paper() {
        // Section 6 prose: beta = 4, p = 1% (infrequent) caps at 5p; the
        // most frequent CENSUS salary class caps at p(1 - ln p) < 20%.
        assert!((enhanced_cap(4.0, 0.01) - 0.05).abs() < 1e-12);
        let p: f64 = 0.048402;
        let cap = enhanced_cap(4.0, p);
        assert!((cap - p * (1.0 - p.ln())).abs() < 1e-12);
        assert!(cap < 0.20);
        assert_eq!(enhanced_cap(2.0, 0.0), 0.0);
    }

    #[test]
    fn gain_and_distance_readings() {
        // The paper's Section 2 example: EMD ties the two cases at 0.1,
        // relative gain separates them 40x.
        assert!((max_gain(&[0.4, 0.6], &[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((max_gain(&[0.01, 0.99], &[0.11, 0.89]) - 10.0).abs() < 1e-12);
        assert!((emd_equal(&[0.4, 0.6], &[0.5, 0.5]) - 0.1).abs() < 1e-12);
        assert_eq!(max_gain(&[0.0, 1.0], &[0.5, 0.5]), f64::INFINITY);
        assert_eq!(delta_reading(&[0.5, 0.5], &[0.0, 1.0]), f64::INFINITY);
        assert!((inv_max_freq(&[0.25, 0.75]) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(inv_max_freq(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn patients_split_verdicts() {
        // The Table-1 nervous/circulatory split achieves beta exactly 1:
        // it passes a beta = 1 claim and fails beta = 0.5.
        let t = patients_table();
        let qi = [patients::attr::WEIGHT, patients::attr::AGE];
        let ecs: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let ok = verify_generalized(&t, &qi, patients::attr::DISEASE, Some(1.0), &ecs, None);
        assert!(ok.pass(), "{}", ok.summary());
        assert!((ok.achieved_beta.unwrap() - 1.0).abs() < 1e-12);
        let bad = verify_generalized(&t, &qi, patients::attr::DISEASE, Some(0.5), &ecs, None);
        assert!(!bad.pass());
        assert!(!bad.find("beta-bound").unwrap().pass);
    }

    #[test]
    fn cover_violations_are_named() {
        let t = patients_table();
        let qi = [patients::attr::WEIGHT];
        let sa = patients::attr::DISEASE;
        let missing: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3, 4]];
        let r = verify_generalized(&t, &qi, sa, None, &missing, None);
        assert!(r.find("cover").unwrap().detail.contains("row 5"));
        let dup: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![2, 3, 4, 5]];
        let r = verify_generalized(&t, &qi, sa, None, &dup, None);
        assert!(r.find("cover").unwrap().detail.contains("more than one"));
        let oob: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3, 4, 5, 9]];
        let r = verify_generalized(&t, &qi, sa, None, &oob, None);
        assert!(r.find("cover").unwrap().detail.contains(">="));
        let empty: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3, 4, 5], vec![]];
        let r = verify_generalized(&t, &qi, sa, None, &empty, None);
        assert!(!r.find("ecs-nonempty").unwrap().pass);
    }

    #[test]
    fn info_loss_matches_the_worked_example() {
        // Weights {70, 60, 50} span 20 of 30; the three nervous diseases
        // cover 3 of 6 leaves.
        let t = patients_table();
        let rows: Vec<u32> = vec![0, 1, 2];
        let weight = attr_loss(&t, patients::attr::WEIGHT, &rows);
        assert!((weight - 20.0 / 30.0).abs() < 1e-12);
        let disease = attr_loss(&t, patients::attr::DISEASE, &rows);
        assert!((disease - 0.5).abs() < 1e-12);
        assert_eq!(attr_loss(&t, patients::attr::WEIGHT, &[3]), 0.0);
        // A single EC covering the whole table has full spread on both QIs.
        let whole: Vec<Vec<u32>> = vec![(0..6).collect()];
        let ail = average_info_loss(&t, &[patients::attr::WEIGHT, patients::attr::AGE], &whole);
        assert!((ail - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anatomy_is_trivially_conformant() {
        let t = random_table(&SyntheticConfig::default());
        let r = verify_anatomy(&t, 2);
        assert!(r.pass());
        assert_eq!(r.achieved_beta, Some(0.0));
        assert!(!verify_anatomy(&t, 99).pass());
    }

    #[test]
    fn attr_role_failures_short_circuit() {
        let t = patients_table();
        let r = verify_generalized(&t, &[0, 2], 2, Some(1.0), &[vec![0]], None);
        assert!(!r.pass());
        assert!(!r.find("attr-roles").unwrap().pass);
        let r = verify_perturbed(&t, 99, 2.0, &[], &[], &[], &[], &[], &[]);
        assert!(!r.find("attr-roles").unwrap().pass);
    }
}

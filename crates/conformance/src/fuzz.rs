//! The deterministic artifact fuzzer: random tables × random parameters ×
//! every scheme, published through the real pipeline and piped through the
//! oracle (via the full `.bpub` byte round trip, so the store read path is
//! fuzzed too).
//!
//! Cases are generated with the vendored mini-proptest strategies from a
//! ChaCha8 stream seeded by the case number — every run, every machine,
//! every CI job sees the same publications. A scheme that (legitimately)
//! refuses a drawn parameter combination — an unsatisfiable β on a
//! degenerate SA distribution, say — is recorded as *skipped*, not failed;
//! a published artifact the oracle rejects is a real bug in the pipeline
//! or the oracle, and the fuzz test goes red with the failing case's full
//! report.

use crate::oracle::verify_bytes;
use crate::publish::{publish_snapshot, PublishSpec, Scheme};
use crate::report::OracleReport;
use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};
use betalike_store::publication_to_vec;
use proptest::strategy::Strategy;
use proptest::test_runner::case_rng;

/// The outcome of one fuzz case.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Case number (the RNG seed component).
    pub case: u32,
    /// Human-readable description of the drawn publication.
    pub desc: String,
    /// Why the pipeline refused the draw, when it did.
    pub skipped: Option<String>,
    /// The oracle's verdict, when the pipeline published.
    pub report: Option<OracleReport>,
}

impl FuzzOutcome {
    /// Whether the case is fine: either skipped for a legitimate pipeline
    /// reason or published-and-conformant.
    pub fn ok(&self) -> bool {
        match &self.report {
            Some(report) => report.pass(),
            None => self.skipped.is_some(),
        }
    }
}

/// Runs `cases` deterministic fuzz cases and returns every outcome.
pub fn fuzz_oracle(cases: u32) -> Vec<FuzzOutcome> {
    let mut out = Vec::with_capacity(cases as usize);
    for case in 0..cases {
        let mut rng = case_rng("betalike-conformance::fuzz_oracle", case);
        // Draw the table shape…
        let rows = (60usize..400).generate(&mut rng);
        let qi_cardinality = (8usize..40).generate(&mut rng);
        let sa_cardinality = (4usize..10).generate(&mut rng);
        let zipf = proptest::bool::ANY.generate(&mut rng);
        let skew = (0.4f64..1.6).generate(&mut rng);
        let dataset_seed = (0u64..1_000_000).generate(&mut rng);
        // …and the publication parameters.
        let scheme = Scheme::ALL[(0usize..Scheme::ALL.len()).generate(&mut rng)];
        let beta = (1.2f64..6.0).generate(&mut rng);
        let t = (0.1f64..0.4).generate(&mut rng);
        let seed = (0u64..1_000_000).generate(&mut rng);

        let cfg = SyntheticConfig {
            rows,
            qi_cardinality,
            sa_cardinality,
            sa_shape: if zipf {
                SaShape::Zipf(skew)
            } else {
                SaShape::Uniform
            },
            seed: dataset_seed,
            ..Default::default()
        };
        let table = random_table(&cfg);
        let spec = PublishSpec {
            dataset_name: "synthetic".into(),
            dataset_rows: rows as u64,
            dataset_seed,
            dataset_key: format!("synthetic:rows={rows}:seed={dataset_seed}"),
            scheme,
            qi: (0..cfg.qi_attrs).collect(),
            qi_pool: (0..cfg.qi_attrs).collect(),
            sa: cfg.qi_attrs,
            beta,
            t,
            seed,
        };
        let desc = format!(
            "case {case}: {} rows={rows} qi_card={qi_cardinality} m={sa_cardinality} \
             shape={} beta={beta:.2} t={t:.2} seed={seed}",
            scheme.as_str(),
            if zipf { "zipf" } else { "uniform" },
        );

        let outcome = match publish_snapshot(&table, &spec) {
            Err(reason) => FuzzOutcome {
                case,
                desc,
                skipped: Some(reason),
                report: None,
            },
            Ok(snap) => {
                // Full byte round trip: fuzz the store writer/reader on the
                // way to the oracle.
                let bytes = publication_to_vec(&snap).expect("serialize published snapshot");
                let report = verify_bytes(&bytes).expect("reread published snapshot");
                FuzzOutcome {
                    case,
                    desc,
                    skipped: None,
                    report: Some(report),
                }
            }
        };
        out.push(outcome);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_is_deterministic() {
        let a = fuzz_oracle(4);
        let b = fuzz_oracle(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.desc, y.desc);
            assert_eq!(x.ok(), y.ok());
            assert_eq!(x.skipped, y.skipped);
        }
    }
}

//! The adversarial attack battery: every adversary in `betalike-attacks`
//! driven against one published artifact, with each reading asserted
//! against the bound the paper predicts for a β-likeness publication.
//!
//! Predicted bounds (all for the enhanced bound, Definition 3):
//!
//! * **Naïve-Bayes** (Section 7): the learned conditionals are pinned
//!   within `(1 + min{β, −ln p_i})` of the unconditional `Pr[t_j]`, so
//!   record-level accuracy collapses toward the majority frequency; the
//!   battery asserts `accuracy ≤ f(p_maj) + slack` — the posterior cap of
//!   the most frequent value plus sampling slack.
//! * **deFinetti** (Kifer 2009, discussed in Section 7): β-likeness bounds
//!   the local-global divergence the matcher exploits; the battery asserts
//!   `accuracy ≤ random baseline + slack`.
//! * **Skewness** (Section 2): the confidence gain `q_v / p_v` on every
//!   value in every EC is bounded by `1 + min{β, −ln p_v}` — exactly the
//!   model, read through the attack's lens.
//! * **Corruption** (Tao et al., Section 7): with *zero* corrupted tuples
//!   the adversary's mean confidence respects the β cap; generalization's
//!   exposure at high corruption rates is *reported* (the paper concedes
//!   it), while the perturbation scheme must be exactly immune
//!   (posterior difference identically 0).
//!
//! Schemes without a β claim (SABRE, Anatomy) still run the battery, but
//! readings are reported without bounds — there is no prediction to
//! breach.

use betalike::perturb::{PerturbationPlan, PerturbedTable};
use betalike_attacks::{
    corruption_attack_generalized, corruption_attack_perturbed, definetti_attack,
    naive_bayes_attack, skewness_gain, AttackKind, DefinettiConfig,
};
use betalike_metrics::Partition;
use betalike_microdata::json::Json;
use betalike_microdata::{SaDistribution, Table, Value};
use betalike_store::{FormSnapshot, PublicationSnapshot};
use std::sync::Arc;

/// Absolute accuracy slack for the statistical attacks (sampling noise on
/// finite tables; the paper's figures show the same wobble).
const ACCURACY_SLACK: f64 = 0.05;

/// Tolerance for the exact per-value skewness bound.
const GAIN_EPS: f64 = 1e-9;

/// One attack's reading against its predicted bound.
#[derive(Debug, Clone)]
pub struct AttackVerdict {
    /// Attack name (from [`AttackKind::name`]) plus a variant suffix where
    /// one attack yields several readings (e.g. `corruption@0.5`).
    pub attack: String,
    /// The measured breach statistic.
    pub reading: f64,
    /// The predicted bound (`None` when the scheme makes no claim the
    /// attack can breach — the reading is informational).
    pub bound: Option<f64>,
    /// Whether the reading respects the bound (vacuously true without
    /// one).
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The machine-readable battery verdict for one artifact.
#[derive(Debug, Clone, Default)]
pub struct BatteryReport {
    /// One verdict per attack reading, in roster order.
    pub verdicts: Vec<AttackVerdict>,
}

impl BatteryReport {
    /// Whether every bounded reading stayed within its bound.
    pub fn pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// The machine-readable document.
    pub fn to_json(&self) -> Json {
        let verdicts = self
            .verdicts
            .iter()
            .map(|v| {
                Json::Obj(vec![
                    ("attack".into(), Json::Str(v.attack.clone())),
                    ("reading".into(), Json::Num(v.reading)),
                    ("bound".into(), v.bound.map_or(Json::Null, Json::Num)),
                    ("pass".into(), Json::Bool(v.pass)),
                    ("detail".into(), Json::Str(v.detail.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("pass".into(), Json::Bool(self.pass())),
            ("verdicts".into(), Json::Arr(verdicts)),
        ])
    }

    fn bounded(&mut self, attack: String, reading: f64, bound: f64, detail: String) {
        self.verdicts.push(AttackVerdict {
            attack,
            reading,
            bound: Some(bound),
            pass: reading <= bound,
            detail,
        });
    }

    fn informational(&mut self, attack: String, reading: f64, detail: String) {
        self.verdicts.push(AttackVerdict {
            attack,
            reading,
            bound: None,
            pass: true,
            detail,
        });
    }
}

/// The enhanced cap `f(p)` the bounds above are stated in — the oracle's
/// own Equation-1 implementation, so battery bounds and oracle verdicts
/// can never drift apart.
use crate::oracle::enhanced_cap as cap;

/// Runs the full roster against a generalized publication.
///
/// `beta` is the publication's claim; `None` (SABRE) demotes the bounded
/// assertions to informational readings.
pub fn run_battery_generalized(
    table: &Table,
    partition: &Partition,
    beta: Option<f64>,
    seed: u64,
) -> BatteryReport {
    let mut report = BatteryReport::default();
    let p = table.sa_distribution(partition.sa());

    // The exhaustive match is the point: a new `AttackKind` variant fails
    // to compile until the battery handles it.
    for kind in AttackKind::ALL {
        match kind {
            AttackKind::NaiveBayes => {
                let out = naive_bayes_attack(table, partition);
                let detail = format!(
                    "accuracy {:.4} on {} tuples, majority frequency {:.4}",
                    out.accuracy, out.tuples, out.majority_freq
                );
                match beta {
                    Some(beta) => {
                        let bound = cap(beta, out.majority_freq) + ACCURACY_SLACK;
                        report.bounded(kind.name().into(), out.accuracy, bound, detail);
                    }
                    None => report.informational(kind.name().into(), out.accuracy, detail),
                }
            }
            AttackKind::Definetti => {
                let out = definetti_attack(table, partition, &DefinettiConfig::default());
                let detail = format!(
                    "accuracy {:.4} vs random in-EC matching {:.4} after {} round(s)",
                    out.accuracy, out.random_baseline, out.iterations
                );
                match beta {
                    Some(_) => {
                        let bound = out.random_baseline + ACCURACY_SLACK;
                        report.bounded(kind.name().into(), out.accuracy, bound, detail);
                    }
                    None => report.informational(kind.name().into(), out.accuracy, detail),
                }
            }
            AttackKind::Skewness => {
                let (worst, worst_bound, detail) = worst_skewness(table, partition, &p, beta);
                match worst_bound {
                    Some(bound) => report.bounded(kind.name().into(), worst, bound, detail),
                    None => report.informational(kind.name().into(), worst, detail),
                }
            }
            AttackKind::Corruption => {
                let clean = corruption_attack_generalized(table, partition, 0.0, seed);
                let detail = format!(
                    "mean confidence {:.4} over {} victims at corruption rate 0",
                    clean.mean_confidence, clean.victims
                );
                match beta {
                    Some(beta) => {
                        // At rate 0 each victim's confidence is its value's
                        // in-EC frequency, so the mean is bounded by the
                        // largest cap any value has.
                        let bound = p
                            .freqs()
                            .iter()
                            .map(|&pv| cap(beta, pv))
                            .fold(0.0f64, f64::max)
                            + GAIN_EPS;
                        report.bounded(
                            format!("{}@0", kind.name()),
                            clean.mean_confidence,
                            bound,
                            detail,
                        );
                    }
                    None => {
                        report.informational(
                            format!("{}@0", kind.name()),
                            clean.mean_confidence,
                            detail,
                        );
                    }
                }
                // The paper concedes generalization is exposed under heavy
                // corruption; record the exposure rather than asserting.
                let heavy = corruption_attack_generalized(table, partition, 0.5, seed);
                report.informational(
                    format!("{}@0.5", kind.name()),
                    heavy.mean_confidence,
                    format!(
                        "mean confidence {:.4}, pinned fraction {:.4} at corruption rate 0.5 \
                         (generalization's conceded exposure)",
                        heavy.mean_confidence, heavy.pinned_fraction
                    ),
                );
            }
        }
    }
    report
}

/// Max `gain / bound` ratio over every EC and value — the skewness attack
/// evaluated exhaustively. Returns `(worst gain, its bound, detail)`.
fn worst_skewness(
    table: &Table,
    partition: &Partition,
    p: &SaDistribution,
    beta: Option<f64>,
) -> (f64, Option<f64>, String) {
    let mut worst_gain = 0.0f64;
    let mut worst_bound = None;
    let mut worst_at = String::from("no EC concentrates any value");
    for (i, _) in partition.ecs().iter().enumerate() {
        let q = partition.ec_distribution(table, i);
        for v in 0..p.m() as u32 {
            let gain = skewness_gain(p, &q, v);
            if gain <= 0.0 {
                continue;
            }
            match beta {
                Some(beta) => {
                    let pv = p.freq(v);
                    let bound = if pv > 0.0 {
                        1.0 + beta.min(-pv.ln()) + GAIN_EPS
                    } else {
                        0.0
                    };
                    // Track the reading closest to (or furthest past) its
                    // bound, not the raw maximum: rare values legitimately
                    // have larger caps.
                    let margin = gain / bound.max(GAIN_EPS);
                    let current = worst_bound
                        .map(|b: f64| worst_gain / b.max(GAIN_EPS))
                        .unwrap_or(0.0);
                    if margin > current {
                        worst_gain = gain;
                        worst_bound = Some(bound);
                        worst_at = format!(
                            "EC {i}, value {v}: gain {gain:.4} vs bound {bound:.4} \
                             (table frequency {pv:.5})"
                        );
                    }
                }
                None => {
                    if gain > worst_gain {
                        worst_gain = gain;
                        worst_at = format!("EC {i}, value {v}: gain {gain:.4} (no β claim)");
                    }
                }
            }
        }
    }
    (worst_gain, worst_bound, worst_at)
}

/// Runs the perturbation-side roster: the Section 7 immunity claim must
/// hold *exactly*.
pub fn run_battery_perturbed(published: &PerturbedTable) -> BatteryReport {
    let mut report = BatteryReport::default();
    for kind in AttackKind::ALL {
        if !kind.applies_to_perturbed() {
            continue;
        }
        match kind {
            AttackKind::Corruption => {
                let diff = corruption_attack_perturbed(published);
                report.bounded(
                    kind.name().into(),
                    diff,
                    0.0,
                    format!(
                        "max posterior change from arbitrary corruption: {diff} \
                         (must be exactly 0: randomizations are independent)"
                    ),
                );
            }
            AttackKind::NaiveBayes | AttackKind::Definetti | AttackKind::Skewness => {
                unreachable!("not applicable to the perturbation scheme")
            }
        }
    }
    report
}

/// Rebuilds the attackable publication from a stored snapshot and runs the
/// applicable roster.
///
/// # Errors
///
/// Returns a message when the snapshot cannot form a publication to attack
/// (structurally invalid partition or plan) — run the oracle first; the
/// battery presumes a structurally sound artifact.
pub fn run_battery_snapshot(snap: &PublicationSnapshot) -> Result<BatteryReport, String> {
    let p = &snap.params;
    let sa = p.sa as usize;
    match &snap.form {
        FormSnapshot::Generalized { ecs } => {
            if ecs.iter().any(Vec::is_empty) {
                return Err("partition has empty ECs".into());
            }
            let qi: Vec<usize> = p.qi.iter().map(|&a| a as usize).collect();
            if qi.contains(&sa) {
                return Err("SA inside the QI set".into());
            }
            let ecs: Vec<Vec<usize>> = ecs
                .iter()
                .map(|ec| ec.iter().map(|&r| r as usize).collect())
                .collect();
            let partition = Partition::new(qi, sa, ecs);
            partition
                .validate_cover(snap.table.num_rows())
                .map_err(|e| format!("partition does not cover the table: {e}"))?;
            // Exhaustive over every scheme the wire knows (X2): only the
            // β-respecting generalizers carry a β promise into the attack
            // roster; sabre trades β for information loss, and anatomy/
            // perturb publish non-generalized forms (they reach this arm
            // only via a mislabeled snapshot, which the oracle rejects).
            let beta = match p.algo.as_str() {
                "burel" | "mondrian" => Some(p.beta),
                "sabre" | "anatomy" | "perturb" => None,
                other => return Err(format!("unknown scheme `{other}` in snapshot params")),
            };
            Ok(run_battery_generalized(
                &snap.table,
                &partition,
                beta,
                p.seed,
            ))
        }
        FormSnapshot::Perturbed {
            sa_column,
            support,
            priors,
            caps,
            gammas,
            alphas,
        } => {
            let domain = snap.table.schema().attr(sa).cardinality();
            let plan = PerturbationPlan::from_parts(
                support.clone(),
                domain,
                priors.clone(),
                caps.clone(),
                gammas.clone(),
                alphas.clone(),
            )
            .map_err(|e| format!("stored plan: {e}"))?;
            let arity = snap.table.schema().arity();
            let mut columns: Vec<Vec<Value>> =
                (0..arity).map(|a| snap.table.column(a).to_vec()).collect();
            if sa_column.len() != snap.table.num_rows() {
                return Err("randomized column is not row-aligned".into());
            }
            columns[sa] = sa_column.clone();
            let published = Table::from_columns(snap.table.schema_arc(), columns)
                .map_err(|e| format!("randomized column: {e}"))?;
            Ok(run_battery_perturbed(&PerturbedTable {
                table: Arc::new(published),
                plan: Arc::new(plan),
                sa,
            }))
        }
        // Anatomy publishes the global histogram: no EC structure to
        // attack, no perturbation claim to test.
        FormSnapshot::Anatomy => Ok(BatteryReport::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::{publish_snapshot, PublishSpec, Scheme};
    use betalike::{burel, BurelConfig};
    use betalike_microdata::census::{self, CensusConfig};

    #[test]
    fn burel_publication_survives_the_battery() {
        let t = census::generate(&CensusConfig::new(3_000, 21));
        let partition = burel(&t, &[0, 1, 2], 5, &BurelConfig::new(4.0)).unwrap();
        let report = run_battery_generalized(&t, &partition, Some(4.0), 1);
        assert!(report.pass(), "{:?}", report.verdicts);
        // Roster coverage: four attacks, corruption contributing two
        // readings.
        assert_eq!(report.verdicts.len(), AttackKind::ALL.len() + 1);
        assert!(report.to_json().get("pass").unwrap().as_bool().unwrap());
    }

    #[test]
    fn leaky_partition_breaches_the_bounds() {
        // Point ECs publish the exact QI/SA pairs: the skewness reading
        // explodes past any β-likeness bound.
        let t = census::generate(&CensusConfig::new(1_500, 22));
        let ecs: Vec<Vec<usize>> = (0..t.num_rows()).map(|r| vec![r]).collect();
        let partition = Partition::new(vec![0, 1, 2], 5, ecs);
        let report = run_battery_generalized(&t, &partition, Some(1.0), 1);
        assert!(!report.pass());
        let skew = report
            .verdicts
            .iter()
            .find(|v| v.attack == "skewness")
            .unwrap();
        assert!(!skew.pass, "point ECs must breach the skewness bound");
    }

    #[test]
    fn snapshot_battery_across_schemes() {
        for scheme in Scheme::ALL {
            let spec = PublishSpec::synthetic(300, 5, scheme);
            let table = spec.synthetic_table();
            let snap = publish_snapshot(&table, &spec).unwrap();
            let report = run_battery_snapshot(&snap).unwrap();
            assert!(report.pass(), "{}: {:?}", scheme.as_str(), report.verdicts);
            match scheme {
                Scheme::Anatomy => assert!(report.verdicts.is_empty()),
                Scheme::Perturb => {
                    assert_eq!(report.verdicts.len(), 1);
                    assert_eq!(report.verdicts[0].reading, 0.0);
                }
                _ => assert!(report.verdicts.len() >= AttackKind::ALL.len()),
            }
        }
    }

    #[test]
    fn broken_snapshot_is_refused() {
        let spec = PublishSpec::synthetic(120, 6, Scheme::Burel);
        let table = spec.synthetic_table();
        let mut snap = publish_snapshot(&table, &spec).unwrap();
        if let FormSnapshot::Generalized { ecs } = &mut snap.form {
            ecs[0].clear();
        }
        assert!(run_battery_snapshot(&snap).unwrap_err().contains("empty"));
    }
}

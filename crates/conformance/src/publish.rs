//! Reference publication plumbing: runs one anonymization scheme and
//! assembles the [`PublicationSnapshot`] exactly the way `betalike-serve`'s
//! persistence layer does (normalized parameters, canonical string,
//! content-addressed handle, publish-time audit for generalization
//! schemes).
//!
//! This module is the *system under test* — it drives `betalike` (core)
//! and `betalike-baselines` so the fuzzer and the mutation suite have real
//! artifacts to verify and corrupt. It is deliberately outside the
//! oracle's dependency boundary (see the crate docs).

use betalike::model::{BetaLikeness, BoundKind};
use betalike::{burel, perturb, BurelConfig};
use betalike_baselines::constraints::LikenessConstraint;
use betalike_baselines::mondrian::{mondrian, MondrianConfig};
use betalike_baselines::sabre::{sabre, SabreConfig};
use betalike_metrics::audit::{audit_partition, ClosenessMetric};
use betalike_microdata::hash::fnv1a64;
use betalike_microdata::synthetic::{random_table, SyntheticConfig};
use betalike_microdata::Table;
use betalike_store::{FormSnapshot, PubParams, PublicationSnapshot};

/// The anonymization scheme to publish with (mirrors the server's `Algo`,
/// kept separate so this crate does not depend on the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// BUREL generalization (Section 4).
    Burel,
    /// The SABRE t-closeness baseline.
    Sabre,
    /// Mondrian constrained by β-likeness.
    Mondrian,
    /// Anatomy-style release.
    Anatomy,
    /// β-likeness by perturbation (Section 5).
    Perturb,
}

impl Scheme {
    /// Every scheme, in wire order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Burel,
        Scheme::Sabre,
        Scheme::Mondrian,
        Scheme::Anatomy,
        Scheme::Perturb,
    ];

    /// The wire name (matches the server's `Algo::as_str`).
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Burel => "burel",
            Scheme::Sabre => "sabre",
            Scheme::Mondrian => "mondrian",
            Scheme::Anatomy => "anatomy",
            Scheme::Perturb => "perturb",
        }
    }
}

/// Everything needed to publish one artifact and name it the way the
/// server would.
#[derive(Debug, Clone)]
pub struct PublishSpec {
    /// Generator family name (`census` / `patients` / `synthetic`).
    pub dataset_name: String,
    /// Generator row count (0 for fixed datasets).
    pub dataset_rows: u64,
    /// Generator seed.
    pub dataset_seed: u64,
    /// The canonical dataset key (e.g. `synthetic:rows=200:seed=7`).
    pub dataset_key: String,
    /// The scheme to publish with.
    pub scheme: Scheme,
    /// QI attributes to generalize (ignored by Anatomy / perturbation).
    pub qi: Vec<usize>,
    /// The dataset's full candidate QI pool.
    pub qi_pool: Vec<usize>,
    /// The sensitive attribute.
    pub sa: usize,
    /// β threshold.
    pub beta: f64,
    /// t threshold (SABRE).
    pub t: f64,
    /// Algorithm seed.
    pub seed: u64,
}

impl PublishSpec {
    /// A spec over the synthetic generator's default roles (QI attributes
    /// `0..qi_attrs`, SA right after) at the workspace default parameters.
    pub fn synthetic(rows: usize, dataset_seed: u64, scheme: Scheme) -> Self {
        let cfg = SyntheticConfig {
            rows,
            seed: dataset_seed,
            ..Default::default()
        };
        PublishSpec {
            dataset_name: "synthetic".into(),
            dataset_rows: rows as u64,
            dataset_seed,
            dataset_key: format!("synthetic:rows={rows}:seed={dataset_seed}"),
            scheme,
            qi: (0..cfg.qi_attrs).collect(),
            qi_pool: (0..cfg.qi_attrs).collect(),
            sa: cfg.qi_attrs,
            beta: 4.0,
            t: 0.2,
            seed: 42,
        }
    }

    /// Materializes the synthetic table a [`PublishSpec::synthetic`] spec
    /// names.
    pub fn synthetic_table(&self) -> Table {
        random_table(&SyntheticConfig {
            rows: self.dataset_rows as usize,
            seed: self.dataset_seed,
            ..Default::default()
        })
    }

    /// The normalized parameters (the server's `PublishRequest::normalized`
    /// semantics: knobs a scheme ignores are zeroed so equal publications
    /// hash equal).
    fn normalized(&self) -> (usize, f64, f64, u64) {
        let mut qi_prefix = self.qi.len();
        let mut beta = self.beta;
        let mut t = self.t;
        let mut seed = self.seed;
        match self.scheme {
            Scheme::Burel => t = 0.0,
            Scheme::Mondrian => {
                t = 0.0;
                seed = 0;
            }
            Scheme::Sabre => beta = 0.0,
            Scheme::Perturb => {
                t = 0.0;
                qi_prefix = 0;
            }
            Scheme::Anatomy => {
                beta = 0.0;
                t = 0.0;
                seed = 0;
                qi_prefix = 0;
            }
        }
        (qi_prefix, beta, t, seed)
    }

    /// The canonical parameter string (the server's wire format).
    pub fn canonical(&self) -> String {
        let (qi_prefix, beta, t, seed) = self.normalized();
        format!(
            "{}|algo={}|qi={qi_prefix}|beta={beta}|t={t}|seed={seed}",
            self.dataset_key,
            self.scheme.as_str()
        )
    }

    /// The content-addressed handle.
    pub fn handle(&self) -> String {
        format!("pub-{:016x}", fnv1a64(self.canonical().as_bytes()))
    }
}

/// Publishes `table` per `spec` and assembles the snapshot the persistence
/// layer would store: normalized params, the form's stored state, and the
/// publish-time audit for generalization schemes.
///
/// # Errors
///
/// Returns the scheme's failure message (e.g. an unsatisfiable β on a
/// degenerate table) — fuzz cases treat this as "skipped", not a bug.
pub fn publish_snapshot(table: &Table, spec: &PublishSpec) -> Result<PublicationSnapshot, String> {
    let (qi_prefix, beta, t, seed) = spec.normalized();
    let generalizes = matches!(
        spec.scheme,
        Scheme::Burel | Scheme::Sabre | Scheme::Mondrian
    );
    let qi: Vec<usize> = if generalizes {
        spec.qi.clone()
    } else {
        Vec::new()
    };

    let mut audit = None;
    let form = match spec.scheme {
        Scheme::Burel => {
            let cfg = BurelConfig::new(beta).with_seed(seed);
            let p = burel(table, &qi, spec.sa, &cfg).map_err(|e| e.to_string())?;
            audit = Some(audit_partition(table, &p, ClosenessMetric::EqualDistance));
            FormSnapshot::Generalized {
                ecs: p
                    .ecs()
                    .iter()
                    .map(|ec| ec.iter().map(|&r| r as u32).collect())
                    .collect(),
            }
        }
        Scheme::Sabre => {
            let cfg = SabreConfig::new(t).with_seed(seed);
            let p = sabre(table, &qi, spec.sa, &cfg).map_err(|e| e.to_string())?;
            audit = Some(audit_partition(table, &p, ClosenessMetric::EqualDistance));
            FormSnapshot::Generalized {
                ecs: p
                    .ecs()
                    .iter()
                    .map(|ec| ec.iter().map(|&r| r as u32).collect())
                    .collect(),
            }
        }
        Scheme::Mondrian => {
            let model =
                BetaLikeness::with_bound(beta, BoundKind::Enhanced).map_err(|e| e.to_string())?;
            let c = LikenessConstraint::new(table, spec.sa, model);
            let p = mondrian(table, &qi, spec.sa, &c, &MondrianConfig::default())
                .map_err(|e| e.to_string())?;
            audit = Some(audit_partition(table, &p, ClosenessMetric::EqualDistance));
            FormSnapshot::Generalized {
                ecs: p
                    .ecs()
                    .iter()
                    .map(|ec| ec.iter().map(|&r| r as u32).collect())
                    .collect(),
            }
        }
        Scheme::Anatomy => FormSnapshot::Anatomy,
        Scheme::Perturb => {
            let model = BetaLikeness::new(beta).map_err(|e| e.to_string())?;
            let published = perturb(table, spec.sa, &model, seed).map_err(|e| e.to_string())?;
            let plan = &published.plan;
            FormSnapshot::Perturbed {
                sa_column: published.table.column(published.sa).to_vec(),
                support: plan.support().to_vec(),
                priors: plan.priors().to_vec(),
                caps: plan.caps().to_vec(),
                gammas: plan.gammas().to_vec(),
                alphas: plan.alphas().to_vec(),
            }
        }
    };

    Ok(PublicationSnapshot {
        params: PubParams {
            handle: spec.handle(),
            canonical: spec.canonical(),
            dataset_name: spec.dataset_name.clone(),
            dataset_rows: spec.dataset_rows,
            dataset_seed: spec.dataset_seed,
            dataset_key: spec.dataset_key.clone(),
            algo: spec.scheme.as_str().to_string(),
            qi_prefix: qi_prefix as u32,
            beta,
            t,
            seed,
            qi: qi.iter().map(|&a| a as u32).collect(),
            qi_pool: spec.qi_pool.iter().map(|&a| a as u32).collect(),
            sa: spec.sa as u32,
        },
        table: table.clone(),
        form,
        audit,
        catalog: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::verify_snapshot;

    #[test]
    fn every_scheme_publishes_a_conformant_snapshot() {
        for scheme in Scheme::ALL {
            let spec = PublishSpec::synthetic(240, 11, scheme);
            let table = spec.synthetic_table();
            let snap = publish_snapshot(&table, &spec).expect("publish");
            let report = verify_snapshot(&snap);
            assert!(
                report.pass(),
                "{}: {}\n{:?}",
                scheme.as_str(),
                report.summary(),
                report.failures()
            );
            assert_eq!(snap.params.handle, spec.handle());
        }
    }

    #[test]
    fn normalization_zeroes_ignored_knobs() {
        let mut a = PublishSpec::synthetic(100, 1, Scheme::Anatomy);
        a.beta = 9.0;
        a.t = 0.7;
        a.seed = 123;
        let b = PublishSpec::synthetic(100, 1, Scheme::Anatomy);
        assert_eq!(a.handle(), b.handle(), "anatomy ignores beta/t/seed");
        let burel = PublishSpec::synthetic(100, 1, Scheme::Burel);
        assert_ne!(burel.handle(), b.handle());
    }
}

//! The mutation suite: every legitimately published artifact passes the
//! oracle; every deliberately corrupted artifact class is rejected — and
//! rejected for the *right reason* (the expected check fails, or the
//! corruption cascaded into an even earlier structural check).
//!
//! This is the CI conformance gate's teeth-proof: if a mutation ever
//! passes, the oracle has silently lost coverage.

use betalike_conformance::{publish_snapshot, verify_snapshot, Mutation, PublishSpec, Scheme};
use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::{Attribute, Hierarchy, Schema, Table};
use betalike_store::{publication_from_slice, publication_to_vec, PublicationSnapshot};
use std::sync::Arc;

/// One legitimate artifact per scheme over the synthetic generator, plus a
/// richer CENSUS/BUREL artifact and a perturbation artifact whose SA
/// domain has a support gap (so the off-support mutation applies).
fn fixtures() -> Vec<(String, PublicationSnapshot)> {
    let mut out = Vec::new();
    for scheme in Scheme::ALL {
        let spec = PublishSpec::synthetic(260, 17, scheme);
        let table = spec.synthetic_table();
        out.push((
            format!("synthetic/{}", scheme.as_str()),
            publish_snapshot(&table, &spec).expect("synthetic publish"),
        ));
    }
    // CENSUS through BUREL: the paper's headline pipeline.
    let census_table = census::generate(&CensusConfig::new(900, 23));
    let census_spec = PublishSpec {
        dataset_name: "census".into(),
        dataset_rows: 900,
        dataset_seed: 23,
        dataset_key: "census:rows=900:seed=23".into(),
        scheme: Scheme::Burel,
        qi: vec![0, 1, 2],
        qi_pool: (0..census::attr::SALARY).collect(),
        sa: census::attr::SALARY,
        beta: 4.0,
        t: 0.2,
        seed: 42,
    };
    out.push((
        "census/burel".into(),
        publish_snapshot(&census_table, &census_spec).expect("census publish"),
    ));
    // A perturbation artifact over a domain with a support gap (code 2 has
    // zero count), hosting the off-support mutation.
    out.push(("gapped/perturb".into(), gapped_perturb_snapshot()));
    out
}

/// A hand-built table whose SA domain skips one code, perturbed.
fn gapped_perturb_snapshot() -> PublicationSnapshot {
    let age = Attribute::numeric_range("Age", 0, 9).unwrap();
    let zip = Attribute::numeric_range("Zip", 0, 7).unwrap();
    let disease = Attribute::categorical(
        "Disease",
        Hierarchy::flat("any", &["a", "b", "gap", "c", "d"]).unwrap(),
    );
    let schema = Arc::new(Schema::new(vec![age, zip, disease], 2).unwrap());
    let rows = 400usize;
    let mut age_col = Vec::with_capacity(rows);
    let mut zip_col = Vec::with_capacity(rows);
    let mut sa_col = Vec::with_capacity(rows);
    for r in 0..rows {
        age_col.push((r % 10) as u32);
        zip_col.push((r % 8) as u32);
        // Codes 0, 1, 3, 4 — never 2.
        sa_col.push(match r % 4 {
            0 => 0,
            1 => 1,
            2 => 3,
            _ => 4,
        });
    }
    let table = Table::from_columns(schema, vec![age_col, zip_col, sa_col]).unwrap();
    let spec = PublishSpec {
        dataset_name: "synthetic".into(),
        dataset_rows: rows as u64,
        dataset_seed: 0,
        dataset_key: "synthetic:rows=400:seed=0".into(),
        scheme: Scheme::Perturb,
        qi: vec![0, 1],
        qi_pool: vec![0, 1],
        sa: 2,
        beta: 3.0,
        t: 0.2,
        seed: 9,
    };
    publish_snapshot(&table, &spec).expect("gapped perturb publish")
}

#[test]
fn every_legitimate_artifact_passes() {
    for (name, snap) in fixtures() {
        // Through the full byte round trip, like the CI gate.
        let bytes = publication_to_vec(&snap).expect("serialize");
        let reread = publication_from_slice(&bytes).expect("reread");
        let report = verify_snapshot(&reread);
        assert!(
            report.pass(),
            "{name} must pass the oracle: {}\nfailures: {:#?}",
            report.summary(),
            report.failures()
        );
    }
}

#[test]
fn every_applicable_mutation_is_rejected() {
    let fixtures = fixtures();
    let mut applied = std::collections::BTreeMap::new();
    for mutation in Mutation::ALL {
        for (name, snap) in &fixtures {
            let Some(corrupted) = mutation.apply(snap) else {
                continue;
            };
            *applied.entry(mutation.name()).or_insert(0usize) += 1;
            let report = verify_snapshot(&corrupted);
            assert!(
                !report.pass(),
                "mutation `{}` on {name} must be rejected, but the oracle passed it",
                mutation.name()
            );
            // …and by the check the DESIGN.md §10 catalogue promises: the
            // expected check itself must be among the failures, so no
            // check can silently lose its teeth behind a coincidental
            // failure elsewhere.
            let expected = mutation.expected_check();
            assert!(
                report.find(expected).is_some_and(|c| !c.pass),
                "mutation `{}` on {name}: expected check `{expected}` did not fail; \
                 actual failures: {:?}",
                mutation.name(),
                report.failures()
            );
        }
    }
    // Every mutation class in the catalogue applied to at least one
    // fixture — none of the nine can silently rot.
    for mutation in Mutation::ALL {
        assert!(
            applied.get(mutation.name()).copied().unwrap_or(0) > 0,
            "mutation `{}` never applied to any fixture",
            mutation.name()
        );
    }
}

#[test]
fn mutated_artifacts_survive_the_byte_roundtrip_and_still_fail() {
    // Corruption must be detectable *from the file*, not only in memory:
    // serialize each mutated snapshot and verify the reread copy fails
    // too (the store's checksums see a perfectly valid file — the
    // corruption is semantic, which is exactly the oracle's job).
    let fixtures = fixtures();
    for mutation in Mutation::ALL {
        for (name, snap) in &fixtures {
            let Some(corrupted) = mutation.apply(snap) else {
                continue;
            };
            let bytes = publication_to_vec(&corrupted).expect("mutated snapshots serialize");
            let report = betalike_conformance::verify_bytes(&bytes).expect("mutated files decode");
            assert!(
                !report.pass(),
                "mutation `{}` on {name} passed after the byte round trip",
                mutation.name()
            );
        }
    }
}

//! Cross-validation: the independent oracle and the pipeline's own
//! auditors must agree **bit-for-bit** on every seeded dataset — both
//! sides implement the same paper formulas from scratch, so any divergence
//! is a bug in one of them, not floating-point noise.

use betalike::model::BetaLikeness;
use betalike::{burel, perturb, verify, BurelConfig};
use betalike_baselines::sabre::{sabre, SabreConfig};
use betalike_conformance::{verify_generalized, verify_perturbed};
use betalike_metrics::audit::{achieved_beta, audit_partition, ClosenessMetric};
use betalike_metrics::Partition;
use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::patients::{self, patients_table};
use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};
use betalike_microdata::Table;

fn to_u32(ecs: &[Vec<usize>]) -> Vec<Vec<u32>> {
    ecs.iter()
        .map(|ec| ec.iter().map(|&r| r as u32).collect())
        .collect()
}

/// Runs both sides over one partition and asserts bitwise agreement on the
/// achieved β and on all ten audit fields (the oracle's `audit-match`
/// check does the field-by-field comparison).
fn cross_validate(table: &Table, partition: &Partition, beta: Option<f64>, label: &str) {
    let audit = audit_partition(table, partition, ClosenessMetric::EqualDistance);
    let report = verify_generalized(
        table,
        partition.qi(),
        partition.sa(),
        beta,
        &to_u32(partition.ecs()),
        Some(&audit),
    );
    assert!(
        report.pass(),
        "{label}: oracle rejected what the pipeline audited clean: {}\n{:#?}",
        report.summary(),
        report.failures()
    );
    let metrics_beta = achieved_beta(table, partition);
    let oracle_beta = report.achieved_beta.expect("generalized form");
    assert_eq!(
        metrics_beta.to_bits(),
        oracle_beta.to_bits(),
        "{label}: achieved beta diverges: metrics {metrics_beta}, oracle {oracle_beta}"
    );
}

#[test]
fn burel_agrees_on_seeded_datasets() {
    for (rows, seed, beta) in [
        (1_000usize, 3u64, 4.0f64),
        (2_500, 7, 2.0),
        (4_000, 11, 1.0),
    ] {
        let t = census::generate(&CensusConfig::new(rows, seed));
        let p = burel(
            &t,
            &[0, 1, 2],
            census::attr::SALARY,
            &BurelConfig::new(beta).with_seed(42),
        )
        .unwrap();
        cross_validate(
            &t,
            &p,
            Some(beta),
            &format!("census:{rows}:{seed} beta={beta}"),
        );
    }
    for seed in [1u64, 9, 33] {
        let t = random_table(&SyntheticConfig {
            rows: 800,
            sa_cardinality: 8,
            sa_shape: SaShape::Zipf(1.1),
            seed,
            ..Default::default()
        });
        let p = burel(&t, &[0, 1], 2, &BurelConfig::new(3.0).with_seed(5)).unwrap();
        cross_validate(&t, &p, Some(3.0), &format!("synthetic seed={seed}"));
    }
}

#[test]
fn sabre_agrees_without_a_beta_claim() {
    let t = census::generate(&CensusConfig::new(2_000, 13));
    let p = sabre(
        &t,
        &[0, 1, 2],
        census::attr::SALARY,
        &SabreConfig::new(0.25).with_seed(42),
    )
    .unwrap();
    cross_validate(&t, &p, None, "census sabre t=0.25");
}

#[test]
fn hand_built_partitions_agree_including_infinities() {
    // The patients split zeroes three diseases per EC, driving the
    // δ-disclosure reading to +∞ on both sides.
    let t = patients_table();
    let p = Partition::new(
        vec![patients::attr::WEIGHT, patients::attr::AGE],
        patients::attr::DISEASE,
        vec![vec![0, 1, 2], vec![3, 4, 5]],
    );
    cross_validate(&t, &p, Some(1.0), "patients nervous/circulatory");
    // Singleton ECs: the most extreme shape an auditor meets.
    let singles = Partition::new(
        vec![patients::attr::WEIGHT],
        patients::attr::DISEASE,
        (0..6).map(|r| vec![r]).collect(),
    );
    cross_validate(&t, &singles, None, "patients singletons");
}

#[test]
fn negative_verdicts_agree_with_the_core_verifier() {
    // A partition core's definitional verifier rejects must fail the
    // oracle's beta-bound too (and vice versa on the passing side).
    let t = patients_table();
    let qi = vec![patients::attr::WEIGHT, patients::attr::AGE];
    let sa = patients::attr::DISEASE;
    let p = Partition::new(qi.clone(), sa, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    for beta in [0.25f64, 0.5, 0.99, 1.0, 2.0] {
        let model = BetaLikeness::new(beta).unwrap();
        let core_ok = verify(&t, &p, &model).is_ok();
        let report = verify_generalized(&t, &qi, sa, Some(beta), &to_u32(p.ecs()), None);
        let oracle_ok = report.find("beta-bound").unwrap().pass;
        assert_eq!(
            core_ok, oracle_ok,
            "beta {beta}: core verifier says {core_ok}, oracle says {oracle_ok}"
        );
    }
}

#[test]
fn perturbation_plans_agree_bitwise() {
    // The oracle's plan checks demand bitwise equality with what core's
    // Theorem-3 construction published — across dataset shapes and betas.
    for (rows, m, beta, seed) in [
        (2_000usize, 6usize, 2.0f64, 4u64),
        (5_000, 12, 4.0, 8),
        (1_200, 4, 1.5, 15),
    ] {
        let t = random_table(&SyntheticConfig {
            rows,
            sa_cardinality: m,
            sa_shape: SaShape::Zipf(0.9),
            seed,
            ..Default::default()
        });
        let model = BetaLikeness::new(beta).unwrap();
        let published = perturb(&t, 2, &model, seed).unwrap();
        let plan = &published.plan;
        let report = verify_perturbed(
            &t,
            2,
            beta,
            published.table.column(2),
            plan.support(),
            plan.priors(),
            plan.caps(),
            plan.gammas(),
            plan.alphas(),
        );
        assert!(
            report.pass(),
            "rows={rows} m={m} beta={beta}: {}\n{:#?}",
            report.summary(),
            report.failures()
        );
    }
}

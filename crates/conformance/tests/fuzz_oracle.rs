//! The deterministic fuzz gate: random publications across every scheme
//! must come out of the pipeline conformant (or be refused by the pipeline
//! for a legitimate reason) — and the mix must actually exercise every
//! scheme and both verdict paths.

use betalike_conformance::fuzz_oracle;

const CASES: u32 = 48;

#[test]
fn fuzzed_publications_are_conformant() {
    let outcomes = fuzz_oracle(CASES);
    assert_eq!(outcomes.len(), CASES as usize);
    let mut published = 0usize;
    let mut skipped = 0usize;
    for o in &outcomes {
        assert!(
            o.ok(),
            "{}: {}",
            o.desc,
            o.report
                .as_ref()
                .map(|r| format!("{}\n{:#?}", r.summary(), r.failures()))
                .unwrap_or_else(|| "no report, no skip reason".into())
        );
        if o.report.is_some() {
            published += 1;
        } else {
            skipped += 1;
        }
    }
    // The draw ranges are tuned so the bulk of cases publish; a fuzzer
    // that mostly skips is not testing the oracle.
    assert!(
        published >= CASES as usize / 2,
        "only {published}/{CASES} cases published ({skipped} skipped)"
    );
    // Every scheme appears among the published cases.
    for scheme in ["burel", "sabre", "mondrian", "anatomy", "perturb"] {
        assert!(
            outcomes
                .iter()
                .any(|o| o.report.is_some() && o.desc.contains(scheme)),
            "no published fuzz case exercised `{scheme}`"
        );
    }
}

//! The β-likeness privacy model (Section 3 of the paper).
//!
//! β-likeness constrains the *relative* gain in an adversary's confidence
//! about each sensitive value: an EC with SA distribution `Q` is acceptable
//! w.r.t. the table distribution `P` iff for every value `v_i`,
//! `(q_i − p_i)/p_i` does not exceed the model's bound.
//!
//! * [`BoundKind::Basic`] uses the constant bound `β` (Definition 2), i.e.
//!   the frequency cap `q_i ≤ (1 + β)·p_i`.
//! * [`BoundKind::Enhanced`] uses `min{β, −ln p_i}` (Definition 3), i.e. the
//!   cap `f(p_i) = (1 + min{β, −ln p_i})·p_i` of Equation 1 — a continuous,
//!   monotonically increasing function with `f(0) = 0`, `f(1) = 1`, which
//!   keeps *frequent* values from reaching frequency 1 in an EC.
//!
//! The same [`BetaLikeness`] object drives the anonymizers (BUREL's
//! eligibility condition, the perturbation plan) *and* the verifier, so the
//! guarantee that ships with a publication is checked against the
//! definition, not against an algorithm's internal bookkeeping.

use crate::error::{Error, Result, Violation};
use betalike_metrics::Partition;
use betalike_microdata::{SaDistribution, Table};

/// Which frequency bound instantiates the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundKind {
    /// Definition 2: cap `(1 + β)·p`.
    Basic,
    /// Definition 3 / Equation 1: cap `(1 + min{β, −ln p})·p`. The paper's
    /// default, and ours.
    #[default]
    Enhanced,
}

/// A configured β-likeness model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaLikeness {
    beta: f64,
    bound: BoundKind,
}

impl BetaLikeness {
    /// Creates an enhanced-bound model (the paper's default).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadBeta`] unless `beta` is finite and `> 0`.
    pub fn new(beta: f64) -> Result<Self> {
        Self::with_bound(beta, BoundKind::Enhanced)
    }

    /// Creates a model with an explicit bound kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadBeta`] unless `beta` is finite and `> 0`.
    pub fn with_bound(beta: f64, bound: BoundKind) -> Result<Self> {
        if !beta.is_finite() || beta <= 0.0 {
            return Err(Error::BadBeta(beta));
        }
        Ok(BetaLikeness { beta, bound })
    }

    /// The β threshold.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The bound kind.
    #[inline]
    pub fn bound_kind(&self) -> BoundKind {
        self.bound
    }

    /// The relative-gain bound for a value of table frequency `p`:
    /// `β` (basic) or `min{β, −ln p}` (enhanced).
    pub fn gain_bound(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p), "frequency out of range: {p}");
        match self.bound {
            BoundKind::Basic => self.beta,
            BoundKind::Enhanced => {
                if p <= 0.0 {
                    self.beta
                } else {
                    self.beta.min(-p.ln())
                }
            }
        }
    }

    /// The EC-frequency cap `f(p)` (Equation 1): the maximum frequency a
    /// value of table frequency `p` may reach in any EC.
    ///
    /// For the enhanced bound this is `p(1+β)` below `e^{−β}` and
    /// `p(1 − ln p)` above, meeting continuously at `p = e^{−β}`; it is
    /// strictly below 1 for `p < 1`.
    pub fn max_ec_freq(&self, p: f64) -> f64 {
        (1.0 + self.gain_bound(p)) * p
    }

    /// The frequency threshold `e^{−β}` separating "infrequent" values
    /// (β-bounded) from "frequent" ones (−ln p bounded) under the enhanced
    /// bound.
    pub fn frequency_threshold(&self) -> f64 {
        (-self.beta).exp()
    }

    /// The EC-frequency *floor* used by the two-sided extension
    /// (Section 7 of the paper: "our model can be straightforwardly
    /// extended to constrain negative divergences as well").
    ///
    /// We instantiate the extension multiplicatively, mirroring the upper
    /// cap: `q ≥ p / (1 + min{β, −ln p})`. Unlike δ-disclosure-privacy's
    /// `e^{−δ} p` floor this never *requires* a value to be absent-proof at
    /// β where the cap would be vacuous — floor and cap always share the
    /// same amplification factor.
    pub fn min_ec_freq(&self, p: f64) -> f64 {
        if p <= 0.0 {
            0.0
        } else {
            p / (1.0 + self.gain_bound(p))
        }
    }

    /// Checks one EC distribution against the table distribution.
    ///
    /// Returns the first violating value as `Err`, with `ec` filled by the
    /// caller-provided index.
    pub fn check_distribution(
        &self,
        table_dist: &SaDistribution,
        ec_dist: &SaDistribution,
        ec: usize,
    ) -> std::result::Result<(), Violation> {
        assert_eq!(
            table_dist.m(),
            ec_dist.m(),
            "distributions over different domains"
        );
        for (v, (&p, &q)) in table_dist.freqs().iter().zip(ec_dist.freqs()).enumerate() {
            if q <= p {
                continue;
            }
            let bound = self.max_ec_freq(p);
            if q > bound {
                return Err(Violation {
                    ec,
                    value: v as u32,
                    table_freq: p,
                    ec_freq: q,
                    bound,
                });
            }
        }
        Ok(())
    }

    /// Whether a single EC distribution satisfies the model.
    pub fn satisfies(&self, table_dist: &SaDistribution, ec_dist: &SaDistribution) -> bool {
        self.check_distribution(table_dist, ec_dist, 0).is_ok()
    }

    /// Two-sided check (the Section 7 extension): positive gain bounded by
    /// [`Self::max_ec_freq`] *and* negative gain bounded by
    /// [`Self::min_ec_freq`]. Reported violations reuse [`Violation`] with
    /// `bound` set to whichever side was crossed.
    pub fn check_two_sided(
        &self,
        table_dist: &SaDistribution,
        ec_dist: &SaDistribution,
        ec: usize,
    ) -> std::result::Result<(), Violation> {
        self.check_distribution(table_dist, ec_dist, ec)?;
        for (v, (&p, &q)) in table_dist.freqs().iter().zip(ec_dist.freqs()).enumerate() {
            if p <= 0.0 {
                continue;
            }
            let floor = self.min_ec_freq(p);
            if q < floor {
                return Err(Violation {
                    ec,
                    value: v as u32,
                    table_freq: p,
                    ec_freq: q,
                    bound: floor,
                });
            }
        }
        Ok(())
    }
}

/// Verifies that a published partition satisfies β-likeness with respect to
/// the original table, per the *definition* (not the algorithm's internal
/// eligibility bookkeeping).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn verify(table: &Table, partition: &Partition, model: &BetaLikeness) -> Result<()> {
    let p = table.sa_distribution(partition.sa());
    for i in 0..partition.num_ecs() {
        let q = partition.ec_distribution(table, i);
        model
            .check_distribution(&p, &q, i)
            .map_err(Error::Violation)?;
    }
    Ok(())
}

/// Two-sided variant of [`verify`] (the Section 7 extension): also rejects
/// ECs in which a value is *under*-represented beyond the model's floor —
/// useful when reduced likelihood is itself sensitive (the paper's
/// "heterosexual" example).
///
/// # Errors
///
/// Returns the first [`Violation`] found on either side.
pub fn verify_two_sided(table: &Table, partition: &Partition, model: &BetaLikeness) -> Result<()> {
    let p = table.sa_distribution(partition.sa());
    for i in 0..partition.num_ecs() {
        let q = partition.ec_distribution(table, i);
        model.check_two_sided(&p, &q, i).map_err(Error::Violation)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, patients_table};

    #[test]
    fn constructor_validation() {
        assert!(BetaLikeness::new(1.0).is_ok());
        assert!(matches!(BetaLikeness::new(0.0), Err(Error::BadBeta(_))));
        assert!(matches!(BetaLikeness::new(-2.0), Err(Error::BadBeta(_))));
        assert!(matches!(
            BetaLikeness::new(f64::NAN),
            Err(Error::BadBeta(_))
        ));
        assert!(matches!(
            BetaLikeness::new(f64::INFINITY),
            Err(Error::BadBeta(_))
        ));
    }

    #[test]
    fn enhanced_bound_piecewise_form() {
        // Equation 1: below e^{-β} the cap is (1+β)p, above it p(1 − ln p).
        let m = BetaLikeness::new(2.0).unwrap();
        let thr = m.frequency_threshold();
        assert!((thr - (-2.0f64).exp()).abs() < 1e-15);
        let p_low = thr / 2.0;
        assert!((m.max_ec_freq(p_low) - 3.0 * p_low).abs() < 1e-12);
        let p_high = thr * 2.0;
        assert!((m.max_ec_freq(p_high) - p_high * (1.0 - p_high.ln())).abs() < 1e-12);
        // Continuous at the junction.
        let eps = 1e-9;
        assert!((m.max_ec_freq(thr - eps) - m.max_ec_freq(thr + eps)).abs() < 1e-6);
    }

    #[test]
    fn enhanced_cap_properties() {
        // The four properties listed under Equation 1.
        let m = BetaLikeness::new(3.0).unwrap();
        // (1) f(p) < 1 for p < 1, f(1) = 1.
        for p in [0.001, 0.01, 0.1, 0.5, 0.9, 0.999] {
            assert!(m.max_ec_freq(p) < 1.0, "f({p}) = {}", m.max_ec_freq(p));
        }
        assert!((m.max_ec_freq(1.0) - 1.0).abs() < 1e-12);
        // (2) monotone increasing.
        let mut last = 0.0;
        for i in 1..=1000 {
            let p = i as f64 / 1000.0;
            let f = m.max_ec_freq(p);
            assert!(f >= last, "f must be monotone at p = {p}");
            last = f;
        }
        // (3) infrequent values capped at (1+β)p.
        let p = m.frequency_threshold() * 0.9;
        assert!((m.max_ec_freq(p) - 4.0 * p).abs() < 1e-12);
        // (4) frequent values capped strictly below (1+β)p.
        let p = m.frequency_threshold() * 1.5;
        assert!(m.max_ec_freq(p) < 4.0 * p);
    }

    #[test]
    fn basic_bound_can_exceed_one() {
        // The motivating flaw of the basic bound (Section 3): frequent
        // values can legally reach frequency 1 in an EC.
        let m = BetaLikeness::with_bound(1.0, BoundKind::Basic).unwrap();
        assert!(m.max_ec_freq(0.6) > 1.0);
        let e = BetaLikeness::with_bound(1.0, BoundKind::Enhanced).unwrap();
        assert!(e.max_ec_freq(0.6) < 1.0);
    }

    #[test]
    fn paper_census_thresholds() {
        // Section 6 prose: with β = 4, p ≤ e^{-4} ≈ 1.8% caps at 5p; the
        // most frequent salary class (4.8402%) caps at (1 − ln p)·p < 20%.
        let m = BetaLikeness::new(4.0).unwrap();
        assert!((m.frequency_threshold() - 0.0183).abs() < 1e-3);
        let p = 0.01;
        assert!((m.max_ec_freq(p) - 0.05).abs() < 1e-12);
        let p_max: f64 = 0.048402;
        let cap = m.max_ec_freq(p_max);
        assert!(cap < 0.20, "cap = {cap}");
        assert!((cap - p_max * (1.0 - p_max.ln())).abs() < 1e-12);
        // And with β = 1, every salary class is "infrequent" (e^{-1} ≈ 37%),
        // so the global cap is 2 · 4.8402% ≈ 9.7%.
        let m1 = BetaLikeness::new(1.0).unwrap();
        assert!((m1.max_ec_freq(p_max) - 2.0 * p_max).abs() < 1e-12);
    }

    #[test]
    fn check_distribution_reports_first_violation() {
        let m = BetaLikeness::new(1.0).unwrap();
        let p = SaDistribution::from_counts(vec![10, 10, 80]);
        // Value 0 doubles+ its share: (0.3 - 0.1)/0.1 = 2 > 1.
        let q = SaDistribution::from_counts(vec![3, 1, 6]);
        let v = m.check_distribution(&p, &q, 5).unwrap_err();
        assert_eq!(v.ec, 5);
        assert_eq!(v.value, 0);
        assert!((v.ec_freq - 0.3).abs() < 1e-12);
        assert!((v.bound - 0.2).abs() < 1e-12);
        assert!(!m.satisfies(&p, &q));
    }

    #[test]
    fn negative_gain_always_passes() {
        // β-likeness constrains only positive gain (Section 3).
        let m = BetaLikeness::new(0.5).unwrap();
        let p = SaDistribution::from_counts(vec![50, 50]);
        let q = SaDistribution::from_counts(vec![40, 60]);
        // value 1: (0.6-0.5)/0.5 = 0.2 <= 0.5; value 0 loses mass: fine.
        assert!(m.satisfies(&p, &q));
        // An EC missing a value entirely is fine too (unlike δ-disclosure).
        let q2 = SaDistribution::from_counts(vec![0, 1]);
        // value 1 at q=1.0: bound is min(0.5, -ln 0.5)=0.5 -> cap 0.75 < 1.
        assert!(!m.satisfies(&p, &q2));
        let q3 = SaDistribution::from_counts(vec![3, 4]);
        // q1 = 4/7 ≈ 0.571 <= 0.75, q0 < p0: ok.
        assert!(m.satisfies(&p, &q3));
    }

    #[test]
    fn verify_partition_on_patients() {
        let t = patients_table();
        let qi = vec![patients::attr::WEIGHT, patients::attr::AGE];
        let sa = patients::attr::DISEASE;
        // One EC per bucket pair as in Example 1: satisfies β = 1
        // (q = 1/2 vs p = 1/6 would be gain 2 — violates; use the 2-EC
        // arrangement from the paper's Example 1, which satisfies β ≥ 1:
        // each EC holds 3 distinct diseases at 1/3 each, gain = 1).
        let p = Partition::new(qi.clone(), sa, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        let m1 = BetaLikeness::new(1.0).unwrap();
        assert!(verify(&t, &p, &m1).is_ok());
        // β = 0.5 is violated by the same partition.
        let m05 = BetaLikeness::new(0.5).unwrap();
        let err = verify(&t, &p, &m05).unwrap_err();
        assert!(matches!(err, Error::Violation(_)));
        // The whole table as one EC satisfies any β.
        let p1 = Partition::new(qi, sa, vec![vec![0, 1, 2, 3, 4, 5]]);
        let m_tiny = BetaLikeness::new(1e-6).unwrap();
        assert!(verify(&t, &p1, &m_tiny).is_ok());
    }

    #[test]
    fn gain_bound_at_zero_freq() {
        let m = BetaLikeness::new(2.0).unwrap();
        // p = 0 values cannot occur in ECs anyway; the bound degrades
        // gracefully to β and the cap to 0.
        assert_eq!(m.gain_bound(0.0), 2.0);
        assert_eq!(m.max_ec_freq(0.0), 0.0);
        assert_eq!(m.min_ec_freq(0.0), 0.0);
    }

    #[test]
    fn two_sided_floor_mirrors_cap() {
        let m = BetaLikeness::new(2.0).unwrap();
        for p in [0.01, 0.1, 0.3] {
            let cap = m.max_ec_freq(p);
            let floor = m.min_ec_freq(p);
            // Same amplification factor on both sides: cap/p = p/floor.
            assert!((cap / p - p / floor).abs() < 1e-12, "p = {p}");
            assert!(floor < p && p < cap);
        }
    }

    #[test]
    fn two_sided_check_catches_under_representation() {
        let m = BetaLikeness::new(1.0).unwrap();
        let p = SaDistribution::from_counts(vec![50, 50]);
        // Value 0 dips to 20%: floor is 0.5/2 = 0.25 > 0.2 -> violation,
        // even though the one-sided check passes (value 1 at 0.8 exceeds
        // its cap 0.75 though...). Use milder drift: (0.3, 0.7):
        // cap(0.5) = 0.75 >= 0.7 ok; floor(0.5) = 0.25 <= 0.3 ok.
        let ok = SaDistribution::from_counts(vec![30, 70]);
        assert!(m.check_two_sided(&p, &ok, 0).is_ok());
        // (0.2, 0.8): value 1 stays under its enhanced cap
        // (0.5·(1 + ln 2) ≈ 0.847), but value 0 dips below the floor
        // 0.5/(1 + ln 2) ≈ 0.295 — a pure negative-gain violation.
        let bad = SaDistribution::from_counts(vec![20, 80]);
        assert!(m.check_distribution(&p, &bad, 0).is_ok());
        let v = m.check_two_sided(&p, &bad, 0).unwrap_err();
        assert_eq!(v.value, 0);
        assert!(v.ec_freq < v.bound);
        // A distribution violating ONLY the floor: impossible in m = 2
        // (mass conservation), so use m = 3: p = (0.2, 0.4, 0.4),
        // q = (0.05, 0.5, 0.45): caps: 0.2*2=0.4, 0.4*(1+0.916)=0.766...;
        // floors: 0.1, 0.208...; q0 = 0.05 < 0.1 -> floor violation.
        let p3 = SaDistribution::from_counts(vec![20, 40, 40]);
        let q3 = SaDistribution::from_counts(vec![5, 50, 45]);
        assert!(
            m.check_distribution(&p3, &q3, 0).is_ok(),
            "one-sided passes"
        );
        let v3 = m.check_two_sided(&p3, &q3, 0).unwrap_err();
        assert_eq!(v3.value, 0);
        assert!(v3.ec_freq < v3.bound);
    }

    #[test]
    fn verify_two_sided_on_patients() {
        let t = patients_table();
        let qi = vec![patients::attr::WEIGHT, patients::attr::AGE];
        let sa = patients::attr::DISEASE;
        // The whole table trivially satisfies both sides.
        let whole = Partition::new(qi.clone(), sa, vec![vec![0, 1, 2, 3, 4, 5]]);
        let m = BetaLikeness::new(1.0).unwrap();
        assert!(verify_two_sided(&t, &whole, &m).is_ok());
        // The nervous/circulatory split zeroes three values per EC:
        // one-sided β = 1 passes, two-sided fails (floor > 0).
        let split = Partition::new(qi, sa, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert!(verify(&t, &split, &m).is_ok());
        assert!(verify_two_sided(&t, &split, &m).is_err());
    }

    /// Lemma 1 (monotonicity): merging two ECs never increases the maximum
    /// relative gain beyond its parts.
    #[test]
    fn lemma1_monotonicity_under_merge() {
        use betalike_microdata::SaDistribution;
        let cases: Vec<(Vec<u64>, Vec<u64>, Vec<u64>)> = vec![
            (vec![10, 0, 0], vec![0, 10, 10], vec![5, 5, 5]),
            (vec![1, 2, 3], vec![3, 2, 1], vec![9, 9, 9]),
            (vec![7, 1, 1], vec![1, 7, 1], vec![20, 20, 20]),
        ];
        for (c1, c2, table) in cases {
            let p = SaDistribution::from_counts(table);
            let q1 = SaDistribution::from_counts(c1.clone());
            let q2 = SaDistribution::from_counts(c2.clone());
            let merged: Vec<u64> = c1.iter().zip(&c2).map(|(a, b)| a + b).collect();
            let q3 = SaDistribution::from_counts(merged);
            let gain = |q: &SaDistribution| {
                betalike_metrics::distance::max_relative_gain(p.freqs(), q.freqs())
            };
            assert!(
                gain(&q3) <= gain(&q1).max(gain(&q2)) + 1e-12,
                "merge must not increase gain"
            );
        }
    }
}

//! Minimal dense linear algebra for the perturbation scheme.
//!
//! The data recipient reconstructs original SA counts by solving
//! `PM × N = E′` (Section 5 of the paper). `PM` is small (m ≤ a few hundred
//! SA values), so an LU decomposition with partial pivoting is ample; for
//! the structured `PM = diag(X_j − Y_j) + 1·yᵀ` produced by uniform
//! perturbation we also provide a Sherman–Morrison O(m²) fast path (see
//! [`mod@crate::perturb`]).

use crate::error::{Error, Result};

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates the identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == n * n`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must be n*n");
        Matrix { n, data }
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        let mut out = vec![0.0; self.n];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *o = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        out
    }

    /// Solves `A·x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] if a pivot is (numerically) zero.
    ///
    /// # Panics
    ///
    /// Panics unless `b.len() == n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below the
            // diagonal.
            let mut pivot_row = col;
            let mut pivot_mag = a[perm[col] * n + col].abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let mag = a[pr * n + col].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(Error::SingularMatrix);
            }
            perm.swap(col, pivot_row);
            let prow = perm[col];
            let pivot = a[prow * n + col];
            for &r in perm.iter().skip(col + 1) {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for k in col + 1..n {
                    a[r * n + k] -= factor * a[prow * n + k];
                }
                // Apply the same operation to the RHS, tracked via the
                // permuted indices.
                let (bi, bp) = (r, prow);
                let delta = factor * x[bp];
                x[bi] -= delta;
            }
        }

        // Back substitution on the permuted triangular system.
        let mut out = vec![0.0; n];
        for col in (0..n).rev() {
            let prow = perm[col];
            let mut acc = x[prow];
            for k in col + 1..n {
                acc -= a[prow * n + k] * out[k];
            }
            out[col] = acc / a[prow * n + col];
        }
        Ok(out)
    }

    /// Full inverse via `n` solves against identity columns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] for singular input.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.n;
        let mut inv = Matrix::zeros(n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
            e[col] = 0.0;
        }
        Ok(inv)
    }

    /// Maximum absolute entry difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the orders differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n, "matrix order mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.n + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.n + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_small_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
        let a = Matrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(Error::SingularMatrix));
        assert!(a.inverse().is_err());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(3, vec![4.0, 7.0, 2.0, 3.0, 6.0, 1.0, 2.0, 5.0, 3.0]);
        let inv = a.inverse().unwrap();
        // A * A^{-1} ≈ I.
        let mut prod = Matrix::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += a[(i, k)] * inv[(k, j)];
                }
                prod[(i, j)] = s;
            }
        }
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn identity_solves_trivially() {
        let i5 = Matrix::identity(5);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(i5.solve(&b).unwrap(), b.to_vec());
        assert!((i5.mul_vec(&b)[3] - 4.0).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_recovers_rhs(
            seedvals in proptest::collection::vec(-5.0f64..5.0, 16),
            b in proptest::collection::vec(-10.0f64..10.0, 4),
        ) {
            // Diagonally dominate to keep the matrix comfortably regular.
            let mut a = Matrix::from_rows(4, seedvals);
            for i in 0..4 {
                a[(i, i)] += 25.0;
            }
            let x = a.solve(&b).unwrap();
            let back = a.mul_vec(&x);
            for (got, want) in back.iter().zip(&b) {
                prop_assert!((got - want).abs() < 1e-8);
            }
        }

        /// The reconstruction path of the perturbation scheme
        /// (`N′ = PM⁻¹ × E′`): inverting a well-conditioned matrix and
        /// multiplying by the observed vector must recover the original
        /// counts it was built from.
        #[test]
        fn inverse_roundtrips_reconstruction(
            seedvals in proptest::collection::vec(-5.0f64..5.0, 16),
            counts in proptest::collection::vec(0.0f64..1000.0, 4),
        ) {
            let mut pm = Matrix::from_rows(4, seedvals);
            for i in 0..4 {
                pm[(i, i)] += 25.0;
            }
            let inv = pm.inverse().unwrap();
            // A · A⁻¹ ≈ I.
            for i in 0..4 {
                for j in 0..4 {
                    let mut s = 0.0;
                    for k in 0..4 {
                        s += pm[(i, k)] * inv[(k, j)];
                    }
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((s - expect).abs() < 1e-10);
                }
            }
            // N′ = PM⁻¹ × E′ recovers N when E′ = PM × N.
            let observed = pm.mul_vec(&counts);
            let recon = inv.mul_vec(&observed);
            for (got, want) in recon.iter().zip(&counts) {
                prop_assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
            }
        }
    }
}

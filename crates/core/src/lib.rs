//! # betalike
//!
//! A production-quality Rust implementation of
//!
//! > Jianneng Cao, Panagiotis Karras: *Publishing Microdata with a Robust
//! > Privacy Guarantee*. PVLDB 5(11): 1388–1399, VLDB 2012.
//!
//! The paper introduces **β-likeness**, a privacy model for microdata
//! publication that bounds the *relative* gain in an adversary's confidence
//! about every sensitive-attribute (SA) value, and two anonymization schemes
//! tailored to it:
//!
//! * **BUREL** ([`burel()`]) — a generalization algorithm that *bucketizes* SA
//!   values by frequency (dynamic programming, [`bucketize`]), *reallocates*
//!   tuples to equivalence classes through a binary ECTree ([`ectree`]), and
//!   materializes classes with Hilbert-curve QI locality ([`retrieve`]).
//! * **β-likeness by perturbation** ([`perturb()`]) — a per-value randomized
//!   response whose published matrix lets recipients reconstruct original
//!   counts (`N′ = PM⁻¹ × E′`).
//!
//! ## Quick start
//!
//! ```
//! use betalike::{burel, BurelConfig, BetaLikeness, verify};
//! use betalike_microdata::patients::{example2_table, attr};
//! use betalike_metrics::loss::average_information_loss;
//!
//! let table = example2_table();
//! let qi = [attr::WEIGHT, attr::AGE];
//!
//! // Publish with enhanced 2-likeness: no SA value's frequency in any EC
//! // may exceed (1 + min{2, -ln p}) * p.
//! let published = burel(&table, &qi, attr::DISEASE, &BurelConfig::new(2.0)).unwrap();
//!
//! // The guarantee is checked against the definition, not the algorithm.
//! let model = BetaLikeness::new(2.0).unwrap();
//! assert!(verify(&table, &published, &model).is_ok());
//! println!("AIL = {:.3}", average_information_loss(&table, &published));
//! ```
//!
//! The sibling crates provide the substrate (`betalike-microdata`,
//! `betalike-hilbert`), evaluation (`betalike-metrics`), baselines
//! (`betalike-baselines`), query workloads (`betalike-query`) and attack
//! simulations (`betalike-attacks`).

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bucketize;
pub mod burel;
pub mod ectree;
pub mod error;
pub mod grouped;
pub mod linalg;
pub mod model;
pub mod perturb;
pub mod retrieve;

pub use burel::{burel, burel_with_keys, BurelConfig};
pub use error::{Error, Result, Violation};
pub use grouped::{burel_grouped, verify_grouped, SaGrouping};
pub use model::{verify, verify_two_sided, BetaLikeness, BoundKind};
pub use perturb::{perturb, PerturbationPlan, PerturbedTable};
pub use retrieve::FillStrategy;

/// Serializes the tests (across this crate's modules) that mutate the
/// process-global `mini_rayon` thread count: without the lock, a
/// concurrently running test could raise the count between a test's
/// `set_threads(1)` and its "serial" baseline run, silently voiding the
/// serial-vs-parallel comparison.
#[cfg(test)]
pub(crate) fn threads_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

//! Semantic (grouped) β-likeness over a categorical SA hierarchy — the
//! Section 7 extension:
//!
//! > "In case proximity is defined for categorical data by a semantic
//! > hierarchy of categorical values, our model can be easily extended so
//! > as to treat all values beneath the same selected nodes in this
//! > hierarchy as the same, and ensure β-likeness for such groups of
//! > values instead of leaf nodes in the hierarchy."
//!
//! Collapsing leaves to their depth-`d` ancestors turns the similarity
//! attack of Section 2 into a frequency constraint: an EC of all-nervous
//! diseases violates *grouped* β-likeness even when each leaf individually
//! satisfies the plain model.
//!
//! The module provides the grouping map, grouped distributions, a grouped
//! verifier, and [`burel_grouped`] — BUREL run against the grouped SA so
//! its output provably satisfies grouped β-likeness (and, by construction,
//! is still published with the original leaf values).

use crate::burel::{burel, BurelConfig};
use crate::error::{Error, Result};
use crate::model::BetaLikeness;
use betalike_metrics::Partition;
use betalike_microdata::{Hierarchy, NodeId, SaDistribution, Table, Value};
use std::sync::Arc;

/// A mapping from SA leaf codes to semantic groups (hierarchy nodes at a
/// chosen depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaGrouping {
    /// Leaf code → dense group index.
    leaf_to_group: Vec<u32>,
    /// Dense group index → hierarchy node.
    group_nodes: Vec<NodeId>,
}

impl SaGrouping {
    /// Groups leaves by their ancestor at `depth` (a leaf shallower than
    /// `depth` forms its own group).
    pub fn at_depth(hierarchy: &Hierarchy, depth: u32) -> Self {
        let mut group_nodes: Vec<NodeId> = Vec::new();
        let mut node_to_group = std::collections::BTreeMap::new();
        let mut leaf_to_group = Vec::with_capacity(hierarchy.num_leaves());
        for code in hierarchy.leaf_codes() {
            let mut node = hierarchy.leaf_node(code);
            while hierarchy.node_depth(node) > depth {
                node = hierarchy
                    .parent(node)
                    .expect("depth > 0 nodes have parents");
            }
            let group = *node_to_group.entry(node).or_insert_with(|| {
                group_nodes.push(node);
                (group_nodes.len() - 1) as u32
            });
            leaf_to_group.push(group);
        }
        SaGrouping {
            leaf_to_group,
            group_nodes,
        }
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.group_nodes.len()
    }

    /// Group of a leaf code.
    ///
    /// # Panics
    ///
    /// Panics for out-of-domain codes.
    #[inline]
    pub fn group_of(&self, leaf: Value) -> u32 {
        self.leaf_to_group[leaf as usize]
    }

    /// The hierarchy node a group represents.
    #[inline]
    pub fn group_node(&self, group: u32) -> NodeId {
        self.group_nodes[group as usize]
    }

    /// Collapses a leaf-level distribution to groups.
    pub fn grouped_distribution(&self, dist: &SaDistribution) -> SaDistribution {
        assert_eq!(
            dist.m(),
            self.leaf_to_group.len(),
            "distribution domain does not match the grouping"
        );
        let mut counts = vec![0u64; self.num_groups()];
        for (v, c) in dist.support() {
            counts[self.group_of(v) as usize] += c;
        }
        SaDistribution::from_counts(counts)
    }

    /// Collapses an SA column to group codes.
    pub fn grouped_codes(&self, column: &[Value]) -> Vec<Value> {
        column.iter().map(|&v| self.group_of(v)).collect()
    }
}

/// Verifies grouped β-likeness of a publication: the model's constraint is
/// checked on group frequencies instead of leaf frequencies.
///
/// # Errors
///
/// Returns the first violation, with `value` holding the *group* index.
pub fn verify_grouped(
    table: &Table,
    partition: &Partition,
    model: &BetaLikeness,
    grouping: &SaGrouping,
) -> Result<()> {
    let sa = partition.sa();
    let table_grouped = grouping.grouped_distribution(&table.sa_distribution(sa));
    for i in 0..partition.num_ecs() {
        let ec_grouped = grouping.grouped_distribution(&partition.ec_distribution(table, i));
        model
            .check_distribution(&table_grouped, &ec_grouped, i)
            .map_err(Error::Violation)?;
    }
    Ok(())
}

/// Runs BUREL against the grouped SA: buckets, templates and eligibility
/// are computed over group frequencies, so the output satisfies *grouped*
/// β-likeness; the published table still carries the original leaf values.
///
/// # Errors
///
/// Propagates [`burel`]'s errors; additionally fails with
/// [`Error::BadSa`] if the SA attribute has no hierarchy.
pub fn burel_grouped(
    table: &Table,
    qi: &[usize],
    sa: usize,
    cfg: &BurelConfig,
    depth: u32,
) -> Result<Partition> {
    let arity = table.schema().arity();
    if sa >= arity {
        return Err(Error::BadSa { index: sa, arity });
    }
    let hierarchy = table
        .schema()
        .attr(sa)
        .hierarchy()
        .ok_or(Error::BadQi(format!(
            "attribute {sa} is not categorical; grouped beta-likeness needs an SA hierarchy"
        )))?;
    let grouping = SaGrouping::at_depth(hierarchy, depth);

    // Build a shadow table whose SA column carries group codes; QI columns
    // are shared so Hilbert keys and extents are identical.
    let grouped_col = grouping.grouped_codes(table.column(sa));
    let mut attrs: Vec<betalike_microdata::Attribute> = table.schema().attributes().to_vec();
    attrs[sa] = betalike_microdata::Attribute::numeric(
        format!("{}_group", table.schema().attr(sa).name()),
        (0..grouping.num_groups()).map(|g| g as f64).collect(),
    )
    .expect("group domain is valid");
    let shadow_schema =
        Arc::new(betalike_microdata::Schema::new(attrs, sa).expect("shadow schema is valid"));
    let mut columns: Vec<Vec<Value>> = (0..arity).map(|a| table.column(a).to_vec()).collect();
    columns[sa] = grouped_col;
    let shadow = Table::from_columns(shadow_schema, columns)
        .expect("shadow columns conform to the shadow schema");

    let partition = burel(&shadow, qi, sa, cfg)?;
    // Re-verify on the *original* table through the grouping (burel's own
    // verification ran on the shadow, which is equivalent; this is the
    // belt-and-braces definition check).
    if cfg.verify_output {
        let model = BetaLikeness::with_bound(cfg.beta, cfg.bound)?;
        verify_grouped(table, &partition, &model, &grouping)?;
    }
    Ok(partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, disease_hierarchy, example2_table};

    #[test]
    fn grouping_at_depth_one_splits_categories() {
        let h = disease_hierarchy();
        let g = SaGrouping::at_depth(&h, 1);
        assert_eq!(g.num_groups(), 2);
        // Leaves 0..=2 are nervous, 3..=5 circulatory.
        for leaf in 0..3 {
            assert_eq!(g.group_of(leaf), g.group_of(0));
        }
        for leaf in 3..6 {
            assert_eq!(g.group_of(leaf), g.group_of(3));
        }
        assert_ne!(g.group_of(0), g.group_of(3));
        assert_eq!(h.label(g.group_node(g.group_of(0))), "nervous diseases");
    }

    #[test]
    fn grouping_at_depth_zero_is_one_group() {
        let h = disease_hierarchy();
        let g = SaGrouping::at_depth(&h, 0);
        assert_eq!(g.num_groups(), 1);
    }

    #[test]
    fn grouping_at_leaf_depth_is_identity() {
        let h = disease_hierarchy();
        let g = SaGrouping::at_depth(&h, h.height());
        assert_eq!(g.num_groups(), h.num_leaves());
        for leaf in h.leaf_codes() {
            assert_eq!(g.group_of(leaf), leaf);
        }
    }

    #[test]
    fn grouped_distribution_sums_members() {
        let h = disease_hierarchy();
        let g = SaGrouping::at_depth(&h, 1);
        let dist = SaDistribution::from_counts(vec![2, 3, 3, 3, 4, 4]);
        let gd = g.grouped_distribution(&dist);
        assert_eq!(gd.counts(), &[8, 11]);
    }

    #[test]
    fn verify_grouped_catches_similarity_attack() {
        // The nervous/circulatory split satisfies plain β = 1 but fails
        // grouped β-likeness at category depth: each EC holds one category
        // at frequency 1.
        let t = patients::patients_table();
        let qi = vec![patients::attr::WEIGHT, patients::attr::AGE];
        let p = Partition::new(
            qi,
            patients::attr::DISEASE,
            vec![vec![0, 1, 2], vec![3, 4, 5]],
        );
        let model = BetaLikeness::new(1.0).unwrap();
        assert!(crate::model::verify(&t, &p, &model).is_ok());
        let h = disease_hierarchy();
        let grouping = SaGrouping::at_depth(&h, 1);
        let err = verify_grouped(&t, &p, &model, &grouping).unwrap_err();
        assert!(matches!(err, Error::Violation(_)));
    }

    #[test]
    fn burel_grouped_satisfies_grouped_model() {
        let t = example2_table();
        let qi = [patients::attr::WEIGHT, patients::attr::AGE];
        let model = BetaLikeness::new(1.0).unwrap();
        let p = burel_grouped(&t, &qi, patients::attr::DISEASE, &BurelConfig::new(1.0), 1).unwrap();
        assert!(p.validate_cover(t.num_rows()).is_ok());
        let h = disease_hierarchy();
        let grouping = SaGrouping::at_depth(&h, 1);
        assert!(verify_grouped(&t, &p, &model, &grouping).is_ok());
        // No EC is category-pure: grouped β = 1 caps each category's
        // in-EC frequency at (1 + min(1, −ln p_g)) · p_g < 1.
        for (i, _) in p.ecs().iter().enumerate() {
            let gd = grouping.grouped_distribution(&p.ec_distribution(&t, i));
            assert!(gd.max_freq() < 1.0, "EC {i} is category-pure");
        }
    }

    #[test]
    fn burel_grouped_needs_categorical_sa() {
        use betalike_microdata::synthetic::{random_table, SyntheticConfig};
        let t = random_table(&SyntheticConfig::default()); // numeric SA
        let err = burel_grouped(&t, &[0, 1], 2, &BurelConfig::new(1.0), 1).unwrap_err();
        assert!(matches!(err, Error::BadQi(_)));
    }
}

//! β-likeness by perturbation (Section 5 of the paper).
//!
//! Instead of generalizing QIs, this scheme randomizes each tuple's SA value
//! independently (a randomized-response procedure with a *different*
//! retention probability per value) so that the adversary's posterior
//! confidence in value `v_i` is bounded by `f(p_i)` — the same cap the
//! generalization scheme enforces per EC. It adapts upward (ρ1, ρ2)-privacy
//! per value: `ρ1_i = p_i`, `ρ2_i = f(p_i)`,
//!
//! ```text
//! γ_i = (ρ2_i / ρ1_i) · (1 − ρ1_i)/(1 − ρ2_i)          (Theorem 2)
//! C^L_M = 1 / (γ_max + m − 1)
//! α_i = (m · γ_i · C^L_M − 1) / (m − 1)                 (Theorem 3)
//! ```
//!
//! With probability `α_i` the value is kept, otherwise it is replaced by a
//! uniform draw from the domain (Equation 12). The perturbation matrix
//! `PM[i][j] = Pr(v_j → v_i)` is published alongside the data; a recipient
//! reconstructs original counts from observed ones as `N′ = PM⁻¹ × E′` and
//! answers aggregate queries from `N′`.
//!
//! Beyond the paper, [`PerturbationPlan::new`] clamps `α_i` to `[0, 1]` and
//! then *directly verifies* the worst-case posterior for every value,
//! scaling all retention probabilities down in the (pathological,
//! never-seen-on-CENSUS) case the sufficient condition of Theorem 2 leaves a
//! gap; at `α = 0` the posterior equals the prior, so a feasible plan always
//! exists.

use crate::error::{Error, Result};
use crate::linalg::Matrix;
use crate::model::BetaLikeness;
use betalike_microdata::json::Json;
use betalike_microdata::{SaDistribution, Table, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// How a perturbation plan bounds adversarial posteriors. Holds everything a
/// data recipient is given: the support, the priors, and `PM`.
#[derive(Debug, Clone)]
pub struct PerturbationPlan {
    /// SA codes with non-zero table frequency, ascending — the perturbation
    /// domain `V`.
    support: Vec<Value>,
    /// Code → dense index into `support` (codes off support map to `None`).
    index_of: Vec<Option<usize>>,
    /// Priors `ρ1_i = p_i` over the support.
    priors: Vec<f64>,
    /// Posterior caps `ρ2_i = f(p_i)`.
    caps: Vec<f64>,
    /// Amplification factors `γ_i`.
    gammas: Vec<f64>,
    /// Final retention probabilities `α_i` (after clamping/scaling).
    alphas: Vec<f64>,
    /// The published column-stochastic matrix `PM[i][j] = Pr(v_j → v_i)`.
    matrix: Matrix,
}

impl PerturbationPlan {
    /// Derives the plan from the table's SA distribution per Theorem 3.
    ///
    /// # Errors
    ///
    /// * [`Error::DegenerateSaDomain`] if fewer than two values have
    ///   support;
    /// * [`Error::UnboundedPosterior`] if some `f(p) ≥ 1` (only possible
    ///   with the basic bound — the enhanced bound guarantees `f(p) < 1`).
    pub fn new(dist: &SaDistribution, model: &BetaLikeness) -> Result<Self> {
        let support: Vec<Value> = dist.support().map(|(v, _)| v).collect();
        let m = support.len();
        if m < 2 {
            return Err(Error::DegenerateSaDomain);
        }
        let mut index_of = vec![None; dist.m()];
        for (i, &v) in support.iter().enumerate() {
            index_of[v as usize] = Some(i);
        }
        let priors: Vec<f64> = support.iter().map(|&v| dist.freq(v)).collect();
        let mut caps = Vec::with_capacity(m);
        let mut gammas = Vec::with_capacity(m);
        for (&v, &p) in support.iter().zip(&priors) {
            let cap = model.max_ec_freq(p);
            if cap >= 1.0 {
                return Err(Error::UnboundedPosterior { value: v, freq: p });
            }
            caps.push(cap);
            // γ_i = (ρ2/ρ1)(1−ρ1)/(1−ρ2).
            gammas.push((cap / p) * (1.0 - p) / (1.0 - cap));
        }
        let gamma_max = gammas.iter().copied().fold(f64::MIN, f64::max);
        let clm = 1.0 / (gamma_max + m as f64 - 1.0);
        let mut alphas: Vec<f64> = gammas
            .iter()
            .map(|&g| ((m as f64 * g * clm - 1.0) / (m as f64 - 1.0)).clamp(0.0, 1.0))
            .collect();

        // Safeguard beyond the paper: verify worst-case posteriors directly
        // and scale retention down if the (sufficient) Theorem-2 condition
        // left a gap after clamping. Converges because α → 0 yields
        // posterior = prior < cap.
        for _ in 0..64 {
            if Self::worst_posterior_ok(&alphas, &priors, &caps) {
                break;
            }
            for a in &mut alphas {
                *a *= 0.9;
            }
        }
        debug_assert!(Self::worst_posterior_ok(&alphas, &priors, &caps));

        let matrix = Self::build_matrix(&alphas);
        Ok(PerturbationPlan {
            support,
            index_of,
            priors,
            caps,
            gammas,
            alphas,
            matrix,
        })
    }

    /// Reassembles a plan from its published parts — the storage path of
    /// `betalike-store`, which persists `support`/`priors`/`caps`/
    /// `gammas`/`alphas` as raw f64 bits. The matrix and the code index
    /// are *rebuilt* here by the same deterministic code that built them
    /// at publish time, so a restored plan is bit-identical to the
    /// original.
    ///
    /// `domain` is the SA attribute's full cardinality (`dist.m()` at
    /// publish time), which may exceed the support.
    ///
    /// # Errors
    ///
    /// [`Error::BadQi`]-style diagnostics when the parts are inconsistent
    /// (mismatched lengths, unsorted or out-of-domain support, fewer than
    /// two values).
    pub fn from_parts(
        support: Vec<Value>,
        domain: usize,
        priors: Vec<f64>,
        caps: Vec<f64>,
        gammas: Vec<f64>,
        alphas: Vec<f64>,
    ) -> Result<Self> {
        let m = support.len();
        let bad = |msg: String| Error::BadQi(format!("perturbation plan parts: {msg}"));
        if m < 2 {
            return Err(Error::DegenerateSaDomain);
        }
        for (name, len) in [
            ("priors", priors.len()),
            ("caps", caps.len()),
            ("gammas", gammas.len()),
            ("alphas", alphas.len()),
        ] {
            if len != m {
                return Err(bad(format!("`{name}` has {len} entries, support has {m}")));
            }
        }
        if support.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad("support must be strictly ascending".into()));
        }
        if support.iter().any(|&v| v as usize >= domain) {
            return Err(bad(format!("support exceeds the SA domain ({domain})")));
        }
        if alphas.iter().any(|&a| !(0.0..=1.0).contains(&a)) {
            return Err(bad("alphas must lie in [0, 1]".into()));
        }
        let mut index_of = vec![None; domain];
        for (i, &v) in support.iter().enumerate() {
            index_of[v as usize] = Some(i);
        }
        let matrix = Self::build_matrix(&alphas);
        Ok(PerturbationPlan {
            support,
            index_of,
            priors,
            caps,
            gammas,
            alphas,
            matrix,
        })
    }

    /// Checks `max_v C(U = v_i | V = v) ≤ cap_i` for every value, computing
    /// posteriors exactly from the transition probabilities.
    fn worst_posterior_ok(alphas: &[f64], priors: &[f64], caps: &[f64]) -> bool {
        let m = alphas.len();
        let mf = m as f64;
        // Pr(v_j → v) = α_j + (1−α_j)/m if v == v_j else (1−α_j)/m.
        for v in 0..m {
            // C(V = v) = Σ_j p_j Pr(v_j → v).
            let mut seen = 0.0;
            for j in 0..m {
                let pr = if j == v {
                    alphas[j] + (1.0 - alphas[j]) / mf
                } else {
                    (1.0 - alphas[j]) / mf
                };
                seen += priors[j] * pr;
            }
            if seen <= 0.0 {
                return false;
            }
            for i in 0..m {
                let pr = if i == v {
                    alphas[i] + (1.0 - alphas[i]) / mf
                } else {
                    (1.0 - alphas[i]) / mf
                };
                let posterior = priors[i] * pr / seen;
                if posterior > caps[i] + 1e-12 {
                    return false;
                }
            }
        }
        true
    }

    /// `PM[i][j] = Pr(v_j → v_i)`: `X_j = α_j + (1−α_j)/m` on the diagonal,
    /// `Y_j = (1−α_j)/m` elsewhere — column-stochastic by construction.
    fn build_matrix(alphas: &[f64]) -> Matrix {
        let m = alphas.len();
        let mf = m as f64;
        let mut pm = Matrix::zeros(m);
        for (j, &a) in alphas.iter().enumerate() {
            let y = (1.0 - a) / mf;
            for i in 0..m {
                pm[(i, j)] = if i == j { a + y } else { y };
            }
        }
        pm
    }

    /// Domain size `m` (values with support).
    #[inline]
    pub fn m(&self) -> usize {
        self.support.len()
    }

    /// The perturbation domain (SA codes with support), ascending.
    #[inline]
    pub fn support(&self) -> &[Value] {
        &self.support
    }

    /// Dense index of an SA code, if it is in the domain.
    #[inline]
    pub fn dense_index(&self, code: Value) -> Option<usize> {
        self.index_of.get(code as usize).copied().flatten()
    }

    /// Published priors `p_i` (the overall SA distribution, Section 5).
    #[inline]
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// Posterior caps `f(p_i)`.
    #[inline]
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// Amplification factors `γ_i`.
    #[inline]
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// Retention probabilities `α_i`.
    #[inline]
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// The published matrix `PM`.
    #[inline]
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Transition probability `Pr(from → to)` over dense indices.
    #[inline]
    pub fn transition(&self, from: usize, to: usize) -> f64 {
        self.matrix[(to, from)]
    }

    /// Reconstructs original counts from observed ones: `N′ = PM⁻¹ × E′`.
    ///
    /// Uses the O(m²) Sherman–Morrison fast path (`PM = diag(α) + 1·yᵀ`)
    /// when all `α_i` are comfortably non-zero, falling back to LU with
    /// partial pivoting otherwise.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] if `PM` is numerically singular (all
    /// retention probabilities ≈ 0: the perturbation destroyed the signal).
    ///
    /// # Panics
    ///
    /// Panics if `observed.len() != m`.
    pub fn reconstruct(&self, observed: &[f64]) -> Result<Vec<f64>> {
        assert_eq!(observed.len(), self.m(), "observed counts arity mismatch");
        if self.alphas.iter().all(|&a| a > 1e-9) {
            self.reconstruct_sherman_morrison(observed)
        } else {
            self.matrix.solve(observed)
        }
    }

    /// Sherman–Morrison solve of `(diag(α) + 1·yᵀ) x = b` with
    /// `y_j = (1 − α_j)/m`:
    /// `x = D⁻¹b − D⁻¹1 · (yᵀD⁻¹b) / (1 + yᵀD⁻¹1)`.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] if some `α_i = 0` or the rank-1 denominator
    /// vanishes.
    pub fn reconstruct_sherman_morrison(&self, observed: &[f64]) -> Result<Vec<f64>> {
        assert_eq!(observed.len(), self.m(), "observed counts arity mismatch");
        let m = self.m() as f64;
        if self.alphas.iter().any(|&a| a <= 0.0) {
            return Err(Error::SingularMatrix);
        }
        let dinv_b: Vec<f64> = observed
            .iter()
            .zip(&self.alphas)
            .map(|(&b, &a)| b / a)
            .collect();
        let y: Vec<f64> = self.alphas.iter().map(|&a| (1.0 - a) / m).collect();
        let yt_dinv_b: f64 = y.iter().zip(&dinv_b).map(|(&yi, &xi)| yi * xi).sum();
        let yt_dinv_one: f64 = y.iter().zip(&self.alphas).map(|(&yi, &a)| yi / a).sum();
        let denom = 1.0 + yt_dinv_one;
        if denom.abs() < 1e-300 {
            return Err(Error::SingularMatrix);
        }
        let scale = yt_dinv_b / denom;
        Ok(dinv_b
            .iter()
            .zip(&self.alphas)
            .map(|(&xi, &a)| xi - scale / a)
            .collect())
    }

    /// Reconstructs by explicit LU solve (reference path for the ablation
    /// bench).
    pub fn reconstruct_lu(&self, observed: &[f64]) -> Result<Vec<f64>> {
        assert_eq!(observed.len(), self.m(), "observed counts arity mismatch");
        self.matrix.solve(observed)
    }
}

/// A table published under β-likeness by perturbation: QI columns intact,
/// SA column randomized, plus everything the recipient needs to reconstruct.
///
/// Both payloads sit behind [`Arc`]s, so cloning a published artifact (to
/// hand it to another serving thread, say) costs two reference-count bumps
/// rather than a column copy.
#[derive(Debug, Clone)]
pub struct PerturbedTable {
    /// The published table (same schema; SA column randomized).
    pub table: Arc<Table>,
    /// The published plan (support, priors, `PM`).
    pub plan: Arc<PerturbationPlan>,
    /// The SA attribute index.
    pub sa: usize,
}

impl PerturbedTable {
    /// Observed (perturbed) SA counts over a row subset, densely indexed by
    /// the plan's support.
    pub fn observed_counts(&self, rows: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.plan.m()];
        let col = self.table.column(self.sa);
        for &r in rows {
            let idx = self
                .plan
                .dense_index(col[r])
                .expect("perturbed values stay in the support");
            counts[idx] += 1.0;
        }
        counts
    }

    /// Reconstructed original SA counts over a row subset
    /// (`N′ = PM⁻¹ × E′`).
    ///
    /// # Errors
    ///
    /// Propagates [`Error::SingularMatrix`].
    pub fn reconstruct_counts(&self, rows: &[usize]) -> Result<Vec<f64>> {
        self.plan.reconstruct(&self.observed_counts(rows))
    }
}

/// Perturbs a table's SA column per the plan (Equation 12), deterministically
/// for a given seed.
///
/// # Errors
///
/// Propagates plan-construction errors; see [`PerturbationPlan::new`].
pub fn perturb(
    table: &Table,
    sa: usize,
    model: &BetaLikeness,
    seed: u64,
) -> Result<PerturbedTable> {
    let arity = table.schema().arity();
    if sa >= arity {
        return Err(Error::BadSa { index: sa, arity });
    }
    if table.is_empty() {
        return Err(Error::EmptyTable);
    }
    let dist = table.sa_distribution(sa);
    let plan = Arc::new(PerturbationPlan::new(&dist, model)?);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = plan.m();

    let mut new_sa = Vec::with_capacity(table.num_rows());
    for &v in table.column(sa) {
        let i = plan
            .dense_index(v)
            .expect("table values are in the support");
        let keep = rng.gen::<f64>() < plan.alphas()[i];
        if keep {
            new_sa.push(v);
        } else {
            let pick = rng.gen_range(0..m);
            new_sa.push(plan.support()[pick]);
        }
    }

    let mut columns: Vec<Vec<Value>> = (0..arity).map(|a| table.column(a).to_vec()).collect();
    columns[sa] = new_sa;
    let published = Table::from_columns(table.schema_arc(), columns)
        .expect("perturbed column stays within the SA domain");
    Ok(PerturbedTable {
        table: Arc::new(published),
        plan,
        sa,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BoundKind;
    use betalike_microdata::census::{self, CensusConfig};
    use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};

    fn model(beta: f64) -> BetaLikeness {
        BetaLikeness::new(beta).unwrap()
    }

    #[test]
    fn plan_rejects_degenerate_domains() {
        let single = SaDistribution::from_counts(vec![0, 9, 0]);
        assert!(matches!(
            PerturbationPlan::new(&single, &model(1.0)),
            Err(Error::DegenerateSaDomain)
        ));
    }

    #[test]
    fn plan_rejects_unbounded_basic_caps() {
        // Basic bound: f(0.6) = (1+1)·0.6 = 1.2 ≥ 1.
        let dist = SaDistribution::from_counts(vec![60, 40]);
        let m = BetaLikeness::with_bound(1.0, BoundKind::Basic).unwrap();
        assert!(matches!(
            PerturbationPlan::new(&dist, &m),
            Err(Error::UnboundedPosterior { value: 0, .. })
        ));
        // Enhanced bound handles the same distribution.
        assert!(PerturbationPlan::new(&dist, &model(1.0)).is_ok());
    }

    #[test]
    fn plan_matrix_is_column_stochastic() {
        let dist = SaDistribution::from_counts(vec![5, 10, 30, 55]);
        let plan = PerturbationPlan::new(&dist, &model(2.0)).unwrap();
        let m = plan.m();
        assert_eq!(m, 4);
        for j in 0..m {
            let col_sum: f64 = (0..m).map(|i| plan.matrix()[(i, j)]).sum();
            assert!(
                (col_sum - 1.0).abs() < 1e-12,
                "column {j} sums to {col_sum}"
            );
            for i in 0..m {
                assert!(plan.matrix()[(i, j)] >= 0.0);
            }
            // Diagonal dominates the column (Lemma 3).
            for i in 0..m {
                if i != j {
                    assert!(plan.matrix()[(j, j)] > plan.matrix()[(i, j)]);
                }
            }
        }
        // α ∈ [0, 1], γ ≥ 1.
        for (&a, &g) in plan.alphas().iter().zip(plan.gammas()) {
            assert!((0.0..=1.0).contains(&a));
            assert!(g >= 1.0);
        }
    }

    #[test]
    fn from_parts_rebuilds_bit_identical_plans() {
        let dist = SaDistribution::from_counts(vec![5, 0, 10, 30, 55]);
        let plan = PerturbationPlan::new(&dist, &model(2.0)).unwrap();
        let back = PerturbationPlan::from_parts(
            plan.support().to_vec(),
            dist.m(),
            plan.priors().to_vec(),
            plan.caps().to_vec(),
            plan.gammas().to_vec(),
            plan.alphas().to_vec(),
        )
        .unwrap();
        assert_eq!(back.support(), plan.support());
        assert_eq!(back.m(), plan.m());
        for code in 0..dist.m() as u32 {
            assert_eq!(back.dense_index(code), plan.dense_index(code));
        }
        for i in 0..plan.m() {
            for j in 0..plan.m() {
                assert_eq!(
                    back.matrix()[(i, j)].to_bits(),
                    plan.matrix()[(i, j)].to_bits(),
                    "PM[{i}][{j}] must rebuild bit-identically"
                );
            }
        }
        // Reconstruction is therefore bit-identical too.
        let observed = [12.0, 8.0, 31.0, 44.0];
        let a = plan.reconstruct(&observed).unwrap();
        let b = back.reconstruct(&observed).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        struct Parts {
            support: Vec<u32>,
            domain: usize,
            priors: Vec<f64>,
            caps: Vec<f64>,
            gammas: Vec<f64>,
            alphas: Vec<f64>,
        }
        let ok = |f: &dyn Fn(&mut Parts)| {
            let mut p = Parts {
                support: vec![0u32, 2, 3],
                domain: 4,
                priors: vec![0.25, 0.25, 0.5],
                caps: vec![0.8, 0.8, 0.9],
                gammas: vec![2.0, 2.0, 1.5],
                alphas: vec![0.4, 0.4, 0.6],
            };
            f(&mut p);
            PerturbationPlan::from_parts(p.support, p.domain, p.priors, p.caps, p.gammas, p.alphas)
        };
        assert!(ok(&|_| {}).is_ok());
        assert!(matches!(
            ok(&|p| p.support = vec![3]),
            Err(Error::DegenerateSaDomain)
        ));
        assert!(ok(&|p| {
            p.priors.pop();
        })
        .is_err()); // short priors
        assert!(ok(&|p| p.support = vec![2, 0, 3]).is_err()); // unsorted support
        assert!(ok(&|p| p.domain = 2).is_err()); // support exceeds domain
        assert!(ok(&|p| p.alphas[0] = 1.5).is_err()); // alpha out of [0, 1]
    }

    #[test]
    fn posterior_bounded_by_f_for_all_values() {
        // The Definition 6 guarantee, checked exactly.
        let dist = SaDistribution::from_counts(vec![2, 10, 40, 100, 348]);
        for beta in [0.5, 1.0, 3.0] {
            let mdl = model(beta);
            let plan = PerturbationPlan::new(&dist, &mdl).unwrap();
            let m = plan.m();
            for v in 0..m {
                let seen: f64 = (0..m)
                    .map(|j| plan.priors()[j] * plan.transition(j, v))
                    .sum();
                for i in 0..m {
                    let posterior = plan.priors()[i] * plan.transition(i, v) / seen;
                    assert!(
                        posterior <= plan.caps()[i] + 1e-9,
                        "beta {beta}: posterior({i}|{v}) = {posterior} > cap {}",
                        plan.caps()[i]
                    );
                }
            }
        }
    }

    #[test]
    fn retention_grows_with_beta() {
        // Figure 9(b)'s mechanism: higher β ⇒ larger caps ⇒ larger α ⇒ more
        // values survive ⇒ better utility.
        let dist = SaDistribution::from_counts(vec![10, 20, 30, 40]);
        let lo = PerturbationPlan::new(&dist, &model(0.5)).unwrap();
        let hi = PerturbationPlan::new(&dist, &model(3.0)).unwrap();
        let avg = |p: &PerturbationPlan| p.alphas().iter().sum::<f64>() / p.m() as f64;
        assert!(avg(&hi) > avg(&lo));
    }

    #[test]
    fn reconstruction_inverts_expected_counts() {
        let dist = SaDistribution::from_counts(vec![50, 150, 300, 500]);
        let plan = PerturbationPlan::new(&dist, &model(2.0)).unwrap();
        let n = [50.0, 150.0, 300.0, 500.0];
        let e = plan.matrix().mul_vec(&n);
        let back = plan.reconstruct(&e).unwrap();
        for (got, want) in back.iter().zip(&n) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn sherman_morrison_matches_lu() {
        let dist = SaDistribution::from_counts(vec![7, 13, 29, 51, 100, 200]);
        let plan = PerturbationPlan::new(&dist, &model(1.5)).unwrap();
        let observed = [12.0, 8.0, 31.0, 44.0, 96.0, 209.0];
        let sm = plan.reconstruct_sherman_morrison(&observed).unwrap();
        let lu = plan.reconstruct_lu(&observed).unwrap();
        for (a, b) in sm.iter().zip(&lu) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn perturb_preserves_qi_and_schema() {
        let t = random_table(&SyntheticConfig {
            rows: 500,
            qi_attrs: 2,
            sa_cardinality: 6,
            sa_shape: SaShape::Zipf(1.0),
            seed: 5,
            ..Default::default()
        });
        let out = perturb(&t, 2, &model(2.0), 1).unwrap();
        assert_eq!(out.table.num_rows(), 500);
        assert_eq!(out.table.column(0), t.column(0));
        assert_eq!(out.table.column(1), t.column(1));
        // SA stays within the support.
        for &v in out.table.column(2) {
            assert!(out.plan.dense_index(v).is_some());
        }
        // Deterministic per seed, different across seeds.
        let again = perturb(&t, 2, &model(2.0), 1).unwrap();
        assert_eq!(out.table.column(2), again.table.column(2));
        let other = perturb(&t, 2, &model(2.0), 2).unwrap();
        assert_ne!(out.table.column(2), other.table.column(2));
    }

    #[test]
    fn reconstruction_close_on_real_data() {
        // With m = 50 classes the retention probabilities are small
        // (α ≈ 7% at β = 4), so *per-class* reconstructions are noisy; the
        // paper's aggregation queries sum reconstructed counts over an SA
        // *range*, where the noise largely cancels. Verify exactly that.
        let t = census::generate(&CensusConfig::new(30_000, 17));
        let sa = census::attr::SALARY;
        let out = perturb(&t, sa, &model(4.0), 9).unwrap();
        let rows: Vec<usize> = (0..t.num_rows()).collect();
        let recon = out.reconstruct_counts(&rows).unwrap();
        let truth = t.sa_distribution(sa);
        // Reconstructed counts conserve the total exactly (PM is
        // column-stochastic, so 1ᵀPM = 1ᵀ and the solve preserves sums).
        let sum: f64 = recon.iter().sum();
        assert!((sum - 30_000.0).abs() < 1e-6);
        // Range aggregate over the middle classes (the kind of pred(SA) the
        // Figure 9 workload issues): within a few percent.
        let range = 10usize..35;
        let est: f64 = range.clone().map(|i| recon[i]).sum();
        let real: f64 = range
            .map(|i| truth.count(out.plan.support()[i]) as f64)
            .sum();
        let rel = (est - real).abs() / real;
        // Fig. 9 of the paper reports median relative errors up to ~15% for
        // this channel; a single full-table range read lands well inside.
        assert!(rel < 0.15, "range-aggregate error {rel} too high");
    }

    #[test]
    fn reconstruction_per_class_accurate_when_retention_high() {
        // A small SA domain yields large α (≈ 46% for m = 4, β = 2), so
        // even per-class reconstructions are tight.
        let t = random_table(&SyntheticConfig {
            rows: 40_000,
            sa_cardinality: 4,
            sa_shape: SaShape::Zipf(0.7),
            seed: 21,
            ..Default::default()
        });
        let out = perturb(&t, 2, &model(2.0), 13).unwrap();
        assert!(
            out.plan.alphas().iter().all(|&a| a > 0.3),
            "small domains must retain aggressively: {:?}",
            out.plan.alphas()
        );
        let rows: Vec<usize> = (0..t.num_rows()).collect();
        let recon = out.reconstruct_counts(&rows).unwrap();
        let truth = t.sa_distribution(2);
        for (i, &v) in out.plan.support().iter().enumerate() {
            let real = truth.count(v) as f64;
            let rel = (recon[i] - real).abs() / real;
            assert!(rel < 0.05, "class {v}: rel err {rel}");
        }
    }

    #[test]
    fn observed_counts_index_by_support() {
        let t = random_table(&SyntheticConfig {
            rows: 100,
            sa_cardinality: 4,
            seed: 8,
            ..Default::default()
        });
        let out = perturb(&t, 2, &model(2.0), 3).unwrap();
        let all: Vec<usize> = (0..100).collect();
        let obs = out.observed_counts(&all);
        assert_eq!(obs.iter().sum::<f64>(), 100.0);
    }

    #[test]
    fn perturb_input_validation() {
        let t = random_table(&SyntheticConfig::default());
        assert!(matches!(
            perturb(&t, 99, &model(1.0), 0),
            Err(Error::BadSa { .. })
        ));
    }
}

/// The publication form of a perturbation plan — everything Section 5 says
/// to release alongside the randomized data: the SA support, the original
/// global distribution `P`, the posterior caps, and the matrix `PM` (row
/// major, `pm[i][j] = Pr(v_j → v_i)`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRelease {
    /// SA codes with support, ascending.
    pub support: Vec<u32>,
    /// Published priors `p_i` over the support.
    pub priors: Vec<f64>,
    /// Posterior caps `f(p_i)`.
    pub caps: Vec<f64>,
    /// Retention probabilities `α_i` (derivable from `pm`, included for
    /// convenience).
    pub alphas: Vec<f64>,
    /// `PM` as rows.
    pub pm: Vec<Vec<f64>>,
}

impl PlanRelease {
    /// Captures a plan for publication.
    pub fn from_plan(plan: &PerturbationPlan) -> Self {
        let m = plan.m();
        let pm = (0..m)
            .map(|i| (0..m).map(|j| plan.matrix()[(i, j)]).collect())
            .collect();
        PlanRelease {
            support: plan.support().to_vec(),
            priors: plan.priors().to_vec(),
            caps: plan.caps().to_vec(),
            alphas: plan.alphas().to_vec(),
            pm,
        }
    }

    /// Renders pretty JSON.
    pub fn to_json(&self) -> String {
        let nums = |xs: &[f64]| Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect());
        Json::Obj(vec![
            (
                "support".to_string(),
                Json::Arr(self.support.iter().map(|&v| Json::Num(v as f64)).collect()),
            ),
            ("priors".to_string(), nums(&self.priors)),
            ("caps".to_string(), nums(&self.caps)),
            ("alphas".to_string(), nums(&self.alphas)),
            (
                "pm".to_string(),
                Json::Arr(self.pm.iter().map(|row| nums(row)).collect()),
            ),
        ])
        .pretty()
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadQi`]-style diagnostics for malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        let bad = |msg: &dyn std::fmt::Display| Error::BadQi(format!("plan JSON: {msg}"));
        let doc = Json::parse(json).map_err(|e| bad(&e))?;
        let floats = |key: &str| -> Result<Vec<f64>> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(&format!("missing array `{key}`")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| bad(&format!("`{key}` must be numbers")))
                })
                .collect()
        };
        let support = doc
            .get("support")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(&"missing array `support`"))?
            .iter()
            .map(|v| {
                v.as_u32()
                    .ok_or_else(|| bad(&"`support` must be u32 codes"))
            })
            .collect::<Result<_>>()?;
        let pm = doc
            .get("pm")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(&"missing array `pm`"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| bad(&"`pm` rows must be arrays"))?
                    .iter()
                    .map(|v| v.as_f64().ok_or_else(|| bad(&"`pm` must be numbers")))
                    .collect::<Result<Vec<f64>>>()
            })
            .collect::<Result<_>>()?;
        Ok(PlanRelease {
            support,
            priors: floats("priors")?,
            caps: floats("caps")?,
            alphas: floats("alphas")?,
            pm,
        })
    }

    /// Rebuilds a reconstruction-capable matrix from the released rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadQi`] if the rows are ragged or empty.
    pub fn matrix(&self) -> Result<crate::linalg::Matrix> {
        let m = self.pm.len();
        if m == 0 || self.pm.iter().any(|r| r.len() != m) {
            return Err(Error::BadQi("released PM is not square".into()));
        }
        let mut flat = Vec::with_capacity(m * m);
        for row in &self.pm {
            flat.extend_from_slice(row);
        }
        Ok(crate::linalg::Matrix::from_rows(m, flat))
    }
}

#[cfg(test)]
mod release_tests {
    use super::*;
    use betalike_microdata::SaDistribution;

    #[test]
    fn release_roundtrips_via_json() {
        let dist = SaDistribution::from_counts(vec![10, 20, 30, 40]);
        let model = crate::model::BetaLikeness::new(2.0).unwrap();
        let plan = PerturbationPlan::new(&dist, &model).unwrap();
        let release = PlanRelease::from_plan(&plan);
        let parsed = PlanRelease::from_json(&release.to_json()).unwrap();
        assert_eq!(parsed.support, release.support);
        let close = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12);
        assert!(close(&parsed.priors, &release.priors));
        assert!(close(&parsed.caps, &release.caps));
        assert!(close(&parsed.alphas, &release.alphas));
        for (pr, rr) in parsed.pm.iter().zip(&release.pm) {
            assert!(close(pr, rr));
        }
        // A recipient can reconstruct with the released matrix alone.
        let n = [10.0, 20.0, 30.0, 40.0];
        let e = parsed.matrix().unwrap().mul_vec(&n);
        let back = parsed.matrix().unwrap().solve(&e).unwrap();
        for (g, w) in back.iter().zip(&n) {
            assert!((g - w).abs() < 1e-8);
        }
    }

    #[test]
    fn ragged_release_rejected() {
        let bad = PlanRelease {
            support: vec![0, 1],
            priors: vec![0.5, 0.5],
            caps: vec![0.8, 0.8],
            alphas: vec![0.3, 0.3],
            pm: vec![vec![0.6, 0.4], vec![0.4]],
        };
        assert!(bad.matrix().is_err());
        assert!(PlanRelease::from_json("[]").is_err());
    }
}

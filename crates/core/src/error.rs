//! Errors raised by the anonymization algorithms.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from the `betalike` core algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The input table has no rows.
    EmptyTable,
    /// The β threshold was not strictly positive or not finite.
    BadBeta(f64),
    /// The QI set was invalid (empty, out of bounds, duplicated, or
    /// containing the SA).
    BadQi(String),
    /// The SA index was out of bounds.
    BadSa {
        /// Offending index.
        index: usize,
        /// Schema arity.
        arity: usize,
    },
    /// The bucketization produced a partition whose root EC violates the
    /// eligibility condition — indicates inconsistent frequency arithmetic
    /// and is always a bug, surfaced rather than silently published.
    RootNotEligible,
    /// Perturbation cannot bound a value's posterior: `f(p) ≥ 1` (use the
    /// enhanced bound, which guarantees `f(p) < 1` for `p < 1`).
    UnboundedPosterior {
        /// SA value code.
        value: u32,
        /// Its table frequency.
        freq: f64,
    },
    /// Perturbation needs at least two distinct SA values.
    DegenerateSaDomain,
    /// The perturbation matrix was numerically singular during
    /// reconstruction.
    SingularMatrix,
    /// A published partition failed β-likeness verification.
    Violation(Violation),
}

/// A concrete β-likeness violation found by [`crate::model::verify`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the violating EC.
    pub ec: usize,
    /// The SA value whose frequency exceeds its bound.
    pub value: u32,
    /// Frequency of the value in the whole table.
    pub table_freq: f64,
    /// Frequency of the value in the EC.
    pub ec_freq: f64,
    /// The bound `f(p)` the EC frequency had to respect.
    pub bound: f64,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyTable => write!(f, "input table has no rows"),
            Error::BadBeta(b) => write!(f, "beta must be finite and > 0, got {b}"),
            Error::BadQi(msg) => write!(f, "invalid QI set: {msg}"),
            Error::BadSa { index, arity } => {
                write!(f, "SA index {index} out of bounds (arity {arity})")
            }
            Error::RootNotEligible => write!(
                f,
                "bucket partition root violates the eligibility condition (internal bug)"
            ),
            Error::UnboundedPosterior { value, freq } => write!(
                f,
                "f(p) >= 1 for SA value {value} (p = {freq}); use the enhanced bound"
            ),
            Error::DegenerateSaDomain => {
                write!(f, "perturbation needs at least two SA values with support")
            }
            Error::SingularMatrix => write!(f, "perturbation matrix is singular"),
            Error::Violation(v) => write!(
                f,
                "EC {} violates beta-likeness on value {}: q = {:.6} > bound {:.6} (p = {:.6})",
                v.ec, v.value, v.ec_freq, v.bound, v.table_freq
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::EmptyTable.to_string().contains("no rows"));
        assert!(Error::BadBeta(-1.0).to_string().contains("-1"));
        let v = Error::Violation(Violation {
            ec: 3,
            value: 7,
            table_freq: 0.01,
            ec_freq: 0.5,
            bound: 0.02,
        });
        let s = v.to_string();
        assert!(s.contains("EC 3") && s.contains("value 7"));
    }
}

//! The bucketization phase of BUREL (Section 4.3, Function `DPpartition`).
//!
//! SA values are sorted by ascending table frequency and grouped into the
//! *minimum number* of buckets of consecutive values such that each bucket
//! satisfies the combinability condition of Lemma 2:
//!
//! > `Σ_{v ∈ bucket} p_v ≤ f(p_min)` where `p_min` is the smallest frequency
//! > in the bucket.
//!
//! With such a partition, any EC drawing tuples (approximately)
//! proportionally to bucket sizes satisfies β-likeness even in the worst
//! case where every tuple drawn from a bucket carries the bucket's least
//! frequent value (Theorem 1).
//!
//! The dynamic program is the paper's Equation 6: `N[e] = min over
//! combinable (b, e) of N[b−1] + 1`, computed in O(m²) with the running
//! frequency sums maintained incrementally. To keep eligibility checks
//! elsewhere bit-identical with the combinability checks here, all
//! comparisons use the form `count_sum ≤ f(p_min) · |DB|` on raw counts.

use crate::model::BetaLikeness;
use betalike_microdata::SaDistribution;

/// A bucket of SA values produced by [`dp_partition`].
#[derive(Debug, Clone, PartialEq)]
pub struct SaBucket {
    /// SA value codes in this bucket (ascending table frequency).
    pub values: Vec<u32>,
    /// Total tuple count over the bucket's values.
    pub count: u64,
    /// Table frequency of the bucket's least frequent value (`p_ℓj`).
    pub min_freq: f64,
    /// The cap `f(p_ℓj)` every EC share drawn from this bucket must respect.
    pub cap: f64,
}

/// Partitions the SA domain into the minimum number of frequency-consecutive
/// buckets satisfying Lemma 2 (see module docs), packing each bucket to at
/// most `1 − slack_reserve` of its cap.
///
/// The paper's `Combinable` uses the strict condition `Σ p < f(p_min)`
/// (`slack_reserve = 0`). A positive reserve leaves headroom between a
/// bucket's frequency mass and its cap; the reallocation phase needs that
/// headroom to absorb the integer rounding of its halving splits — with a
/// tightly packed bucket (mass = cap, which smooth SA marginals readily
/// produce), the ECTree cannot split *at all* and the whole table collapses
/// into one EC. The reserve only makes buckets smaller, so Lemma 2 (checked
/// against the *true* caps downstream) continues to hold; privacy is
/// unaffected, only granularity improves. See DESIGN.md §6.
///
/// Values with zero table frequency are excluded: they cannot occur in any
/// EC. Returns an empty vector for an empty distribution.
///
/// # Panics
///
/// Panics unless `slack_reserve ∈ [0, 1)`.
pub fn dp_partition(
    dist: &SaDistribution,
    model: &BetaLikeness,
    slack_reserve: f64,
) -> Vec<SaBucket> {
    assert!(
        (0.0..1.0).contains(&slack_reserve),
        "slack reserve must be in [0, 1)"
    );
    let values = dist.values_by_ascending_freq();
    let m = values.len();
    if m == 0 {
        return Vec::new();
    }
    let db_size = dist.total() as f64;

    // Prefix sums of counts over the sorted values: counts of
    // values[0..e].
    let mut prefix = Vec::with_capacity(m + 1);
    prefix.push(0u64);
    for &v in &values {
        prefix.push(prefix.last().unwrap() + dist.count(v));
    }

    // caps[b] = (1 − reserve) · f(p of values[b]) * |DB|: the largest count
    // sum a bucket starting at b may hold.
    let caps: Vec<f64> = values
        .iter()
        .map(|&v| (1.0 - slack_reserve) * model.max_ec_freq(dist.freq(v)) * db_size)
        .collect();

    // A singleton is always a valid bucket (Lemma 2 holds trivially:
    // p ≤ f(p)); multi-value buckets must fit strictly under the reserved
    // cap, per the paper's strict Combinable.
    let combinable =
        |b: usize, e: usize| -> bool { b == e || ((prefix[e + 1] - prefix[b]) as f64) < caps[b] };

    // n[e] = min #buckets covering values[0..e]; split[e] = start of the
    // last bucket in an optimal cover of values[0..e].
    const UNSET: usize = usize::MAX;
    let mut n = vec![UNSET; m + 1];
    let mut split = vec![UNSET; m + 1];
    n[0] = 0;
    for e in 1..=m {
        // A single value is always a valid bucket: p ≤ f(p).
        debug_assert!(combinable(e - 1, e - 1), "singleton bucket must combine");
        let mut b = e; // candidate bucket start (1-based boundary): bucket is values[b-1..e].
        while b >= 1 && combinable(b - 1, e - 1) {
            if n[b - 1] != UNSET && (n[e] == UNSET || n[b - 1] + 1 < n[e]) {
                n[e] = n[b - 1] + 1;
                split[e] = b - 1;
            }
            b -= 1;
        }
        debug_assert_ne!(n[e], UNSET, "prefix {e} must be coverable");
    }

    // Walk the split chain back to materialize buckets, then reverse so
    // buckets come out in ascending-frequency order.
    let mut buckets = Vec::with_capacity(n[m]);
    let mut e = m;
    while e > 0 {
        let b = split[e];
        let bucket_values: Vec<u32> = values[b..e].to_vec();
        let count = prefix[e] - prefix[b];
        let min_freq = dist.freq(bucket_values[0]);
        buckets.push(SaBucket {
            values: bucket_values,
            count,
            min_freq,
            cap: model.max_ec_freq(min_freq),
        });
        e = b;
    }
    buckets.reverse();
    buckets
}

/// Trivial one-value-per-bucket partition (ablation baseline: every EC then
/// mirrors the table's SA distribution exactly, achieving 0-likeness at high
/// information loss, as in Example 1 of the paper).
pub fn trivial_partition(dist: &SaDistribution, model: &BetaLikeness) -> Vec<SaBucket> {
    dist.values_by_ascending_freq()
        .into_iter()
        .map(|v| SaBucket {
            values: vec![v],
            count: dist.count(v),
            min_freq: dist.freq(v),
            cap: model.max_ec_freq(dist.freq(v)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(beta: f64) -> BetaLikeness {
        BetaLikeness::new(beta).unwrap()
    }

    /// Checks the Lemma 2 condition on every bucket.
    fn assert_valid(buckets: &[SaBucket], dist: &SaDistribution, m: &BetaLikeness) {
        for b in buckets {
            let sum: f64 = b.values.iter().map(|&v| dist.freq(v)).sum();
            let min = b
                .values
                .iter()
                .map(|&v| dist.freq(v))
                .fold(f64::MAX, f64::min);
            assert!(
                sum <= m.max_ec_freq(min) + 1e-12,
                "bucket {:?} violates Lemma 2: sum {sum} > f({min}) = {}",
                b.values,
                m.max_ec_freq(min)
            );
            assert!((b.min_freq - min).abs() < 1e-15);
        }
    }

    /// Every non-zero value appears in exactly one bucket.
    fn assert_exact_cover(buckets: &[SaBucket], dist: &SaDistribution) {
        let mut seen = std::collections::BTreeSet::new();
        for b in buckets {
            for &v in &b.values {
                assert!(seen.insert(v), "value {v} in two buckets");
            }
        }
        for (v, _) in dist.support() {
            assert!(seen.contains(&v), "value {v} not covered");
        }
        assert_eq!(seen.len(), dist.support_size());
    }

    #[test]
    fn example2_bucketization() {
        // Example 2 of the paper: counts (2,3,3,3,4,4), β = 2 yields three
        // buckets: {headache, epilepsy}, {brain tumors, anemia}, {angina,
        // heart murmur}.
        let dist = SaDistribution::from_counts(vec![2, 3, 3, 3, 4, 4]);
        let m = model(2.0);
        // Sanity: the caps the paper quotes — f(2/19) ≈ 0.31,
        // f(3/19) ≈ 0.45, f(4/19) ≈ 0.54.
        assert!((m.max_ec_freq(2.0 / 19.0) - 0.3158).abs() < 1e-3);
        assert!((m.max_ec_freq(3.0 / 19.0) - 0.4489).abs() < 1e-2);
        assert!((m.max_ec_freq(4.0 / 19.0) - 0.5385).abs() < 1e-2);
        let buckets = dp_partition(&dist, &m, 0.0);
        assert_eq!(buckets.len(), 3, "paper's Example 2 yields 3 buckets");
        assert_valid(&buckets, &dist, &m);
        assert_exact_cover(&buckets, &dist);
        // Ascending-frequency order groups value 0 (count 2) with one of
        // the count-3 values, etc.; sizes must be (5, 6, 8).
        let mut sizes: Vec<u64> = buckets.iter().map(|b| b.count).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 6, 8]);
    }

    #[test]
    fn uniform_large_beta_single_bucket() {
        // With a huge β, f(p_min) ≥ 1 ≥ Σp: everything fits in one bucket
        // (the cap is min{β, −ln p}; for p = 0.125, −ln p ≈ 2.08, so
        // f = 0.125·3.08 ≈ 0.385 — not 1! The enhanced bound caps the bucket
        // even for large β). Verify the DP respects the enhanced cap.
        let dist = SaDistribution::from_counts(vec![10; 8]);
        let buckets = dp_partition(&dist, &model(100.0), 0.0);
        assert_valid(&buckets, &dist, &model(100.0));
        assert_exact_cover(&buckets, &dist);
        // f(0.125) = 0.125 (1 + ln 8) ≈ 0.385: buckets of at most 3 values.
        assert!(buckets.iter().all(|b| b.values.len() <= 3));
    }

    #[test]
    fn tiny_beta_forces_singletons() {
        let dist = SaDistribution::from_counts(vec![10, 10, 10, 10]);
        let buckets = dp_partition(&dist, &model(1e-9), 0.0);
        assert_eq!(buckets.len(), 4, "no two values are combinable");
        assert_exact_cover(&buckets, &dist);
    }

    #[test]
    fn zero_count_values_excluded() {
        let dist = SaDistribution::from_counts(vec![5, 0, 5, 0]);
        let buckets = dp_partition(&dist, &model(2.0), 0.0);
        let all: Vec<u32> = buckets.iter().flat_map(|b| b.values.clone()).collect();
        assert!(!all.contains(&1) && !all.contains(&3));
        assert_exact_cover(&buckets, &dist);
    }

    #[test]
    fn empty_distribution() {
        let dist = SaDistribution::from_counts(vec![0, 0]);
        assert!(dp_partition(&dist, &model(1.0), 0.0).is_empty());
    }

    #[test]
    fn single_value_distribution() {
        let dist = SaDistribution::from_counts(vec![0, 7]);
        let buckets = dp_partition(&dist, &model(1.0), 0.0);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].values, vec![1]);
        assert_eq!(buckets[0].count, 7);
        assert!((buckets[0].min_freq - 1.0).abs() < 1e-15);
    }

    #[test]
    fn skewed_distribution_protects_rare_values() {
        // One rare value (1%) and one common (99%): the rare value's cap
        // f(0.01) = 0.01(1+β) is far below 1, so the two values can never
        // share a bucket for reasonable β.
        let dist = SaDistribution::from_counts(vec![1, 99]);
        let buckets = dp_partition(&dist, &model(4.0), 0.0);
        assert_eq!(buckets.len(), 2);
    }

    #[test]
    fn trivial_partition_is_singletons() {
        let dist = SaDistribution::from_counts(vec![3, 1, 0, 6]);
        let m = model(2.0);
        let buckets = trivial_partition(&dist, &m);
        assert_eq!(buckets.len(), 3);
        assert!(buckets.iter().all(|b| b.values.len() == 1));
        assert_exact_cover(&buckets, &dist);
        // Ascending frequency: value 1 (count 1) first.
        assert_eq!(buckets[0].values, vec![1]);
    }

    #[test]
    fn dp_is_no_worse_than_greedy_or_trivial() {
        // Minimality sanity: the DP can never produce more buckets than the
        // trivial partition.
        for seed in 0..20u64 {
            let counts: Vec<u64> = (0..12)
                .map(|i| 1 + ((seed * 7919 + i * 104729) % 50))
                .collect();
            let dist = SaDistribution::from_counts(counts);
            let m = model(1.5);
            let dp = dp_partition(&dist, &m, 0.0);
            let trivial = trivial_partition(&dist, &m);
            assert!(dp.len() <= trivial.len());
            assert_valid(&dp, &dist, &m);
            assert_exact_cover(&dp, &dist);
        }
    }

    /// Brute-force minimum bucket count over consecutive ascending-frequency
    /// segments (O(2^m); test-only reference).
    fn brute_force_min_buckets(dist: &SaDistribution, m: &BetaLikeness) -> usize {
        let values = dist.values_by_ascending_freq();
        let n = values.len();
        if n == 0 {
            return 0;
        }
        let db = dist.total() as f64;
        let combinable = |b: usize, e: usize| -> bool {
            if b == e {
                return true;
            }
            let sum: u64 = values[b..=e].iter().map(|&v| dist.count(v)).sum();
            (sum as f64) < m.max_ec_freq(dist.freq(values[b])) * db
        };
        // best[e] = min buckets covering values[0..e].
        let mut best = vec![usize::MAX; n + 1];
        best[0] = 0;
        for e in 1..=n {
            for b in 1..=e {
                if best[b - 1] != usize::MAX && combinable(b - 1, e - 1) {
                    best[e] = best[e].min(best[b - 1] + 1);
                }
            }
        }
        best[n]
    }

    #[test]
    fn dp_matches_exhaustive_minimum() {
        // Differential check against an unpruned reference on many random
        // distributions: the DP must return exactly the minimum number of
        // buckets (at zero slack, where the objectives coincide).
        for seed in 0..40u64 {
            let counts: Vec<u64> = (0..10)
                .map(|i| (seed * 31 + i * 17) % 40 + u64::from(i % 3 == 0))
                .collect();
            let dist = SaDistribution::from_counts(counts);
            if dist.total() == 0 {
                continue;
            }
            for beta in [0.5, 1.5, 3.0] {
                let m = model(beta);
                let dp = dp_partition(&dist, &m, 0.0);
                let reference = brute_force_min_buckets(&dist, &m);
                assert_eq!(
                    dp.len(),
                    reference,
                    "seed {seed} beta {beta}: DP returned {} buckets, optimum is {reference}",
                    dp.len()
                );
            }
        }
    }

    proptest! {
        #[test]
        fn dp_partition_always_valid(
            counts in proptest::collection::vec(0u64..200, 1..30),
            beta_milli in 1u32..6000,
        ) {
            let dist = SaDistribution::from_counts(counts);
            prop_assume!(dist.total() > 0);
            let m = model(beta_milli as f64 / 1000.0);
            let buckets = dp_partition(&dist, &m, 0.0);
            assert_valid(&buckets, &dist, &m);
            assert_exact_cover(&buckets, &dist);
            // Buckets hold frequency-consecutive values: counts ascend
            // across bucket boundaries.
            let flat: Vec<u64> = buckets
                .iter()
                .flat_map(|b| b.values.iter().map(|&v| dist.count(v)))
                .collect();
            prop_assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

//! EC materialization — BUREL's `Retrieve` (Section 4.5).
//!
//! Once `biSplit` has fixed how many tuples each EC draws from each bucket,
//! actual tuples are chosen purely by QI proximity (the selection is
//! *SA-indifferent* within a bucket, which is what makes BUREL immune to
//! minimality attacks, Section 7). The paper's heuristic, reproduced here:
//!
//! 1. map every tuple to a 1-D Hilbert value over the QI grid;
//! 2. sort each bucket's tuples by Hilbert value;
//! 3. per EC: pick a seed tuple from the bucket with the largest demand,
//!    then take each bucket's `a_j` tuples *nearest to the seed's Hilbert
//!    value* (binary search + two-sided expansion).
//!
//! Removal from the sorted order uses union-find-style "jump pointers" with
//! path compression, so finding the nearest *alive* tuple after arbitrary
//! deletions stays effectively O(1) amortized — the overall materialization
//! is `O(|SG|·|ϕ|·log |B| + |DB| α(|DB|))`, matching the complexity the
//! paper reports for the same step.

use betalike_hilbert::HilbertCurve;
use betalike_microdata::{RowId, Table};
use rand::Rng;

/// How tuples are assigned to ECs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillStrategy {
    /// The paper's Hilbert-locality heuristic.
    #[default]
    HilbertNearest,
    /// Draw tuples in original row order, ignoring QI proximity entirely —
    /// the ablation baseline quantifying what Hilbert locality buys.
    Arbitrary,
}

/// How the seed tuple of each EC is chosen under
/// [`FillStrategy::HilbertNearest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedChoice {
    /// The first not-yet-assigned tuple (in Hilbert order) of the
    /// largest-demand bucket, turning the per-EC nearest-neighbor search
    /// into a sweep along the curve. Attractive in theory (disjoint curve
    /// segments), but when bucket composition varies across QI space the
    /// sweep accumulates "debt" — regions whose rare-bucket tuples were
    /// consumed early — and dumps it on the final ECs, inflating the AIL
    /// tail. Kept for the ablation bench.
    FirstAlive,
    /// A uniformly random not-yet-assigned tuple of the largest-demand
    /// bucket — the paper's literal description ("randomly picks a tuple x
    /// from a bucket"). Spreads the unavoidable far-fetch damage evenly and
    /// measures ~35% lower AIL than the sweep on CENSUS; the default.
    #[default]
    Random,
}

/// Row-chunk granularity for the parallel Hilbert key computation: large
/// enough that per-chunk scratch setup and result concatenation are noise,
/// small enough that the self-scheduling pool balances uneven chunks.
const KEY_CHUNK: usize = 4_096;

/// Computes the Hilbert key of every row over the QI grid.
///
/// All QI attributes share the same per-dimension bit width (the Hilbert
/// transform requires a uniform grid), sized for the largest QI domain.
/// Codes of smaller domains are *scaled across the full grid side* so every
/// attribute occupies the curve's high-order bits equally — without this, a
/// cardinality-2 attribute such as *gender* would live in the lowest bit
/// and the curve would freely mix its values inside every EC, inflating the
/// published bounding boxes.
///
/// Rows are processed in fixed chunks across the [`mini_rayon`] pool; each
/// chunk reuses one scratch point buffer ([`HilbertCurve::index_in_place`]),
/// so the whole computation performs one allocation per chunk. The result
/// is bit-identical at any thread count (each key depends only on its row).
pub fn hilbert_keys(table: &Table, qi: &[usize]) -> Vec<u128> {
    assert!(!qi.is_empty(), "need at least one QI attribute");
    let bits = qi
        .iter()
        .map(|&a| HilbertCurve::bits_for_cardinality(table.schema().attr(a).cardinality()))
        .max()
        .expect("non-empty QI");
    let curve = HilbertCurve::new(qi.len(), bits).expect("QI grid fits the curve");
    let side = curve.max_coord() as u64;
    let cols: Vec<&[u32]> = qi.iter().map(|&a| table.column(a)).collect();
    // Per-dimension scale: code v of cardinality c maps to
    // round(v · side / (c − 1)); constant attributes map to 0.
    let scales: Vec<Option<u64>> = qi
        .iter()
        .map(|&a| {
            let c = table.schema().attr(a).cardinality() as u64;
            (c > 1).then_some(c - 1)
        })
        .collect();
    // Chunk over any one column purely to derive row ranges: chunk `c`
    // covers rows `c * KEY_CHUNK ..` (the boundary contract of
    // `par_chunks_map`).
    let chunks = mini_rayon::par_chunks_map(cols[0], KEY_CHUNK, |c, chunk| {
        let base = c * KEY_CHUNK;
        let mut point = vec![0u32; qi.len()];
        let mut keys = Vec::with_capacity(chunk.len());
        for r in base..base + chunk.len() {
            for (d, col) in cols.iter().enumerate() {
                point[d] = match scales[d] {
                    Some(denom) => ((col[r] as u64 * side + denom / 2) / denom) as u32,
                    None => 0,
                };
            }
            keys.push(curve.index_in_place(&mut point));
        }
        keys
    });
    let mut out = Vec::with_capacity(table.num_rows());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// One bucket's tuples in Hilbert order with O(1)-amortized alive-neighbor
/// queries after deletions.
#[derive(Debug)]
struct BucketStore {
    /// Hilbert keys, ascending.
    keys: Vec<u128>,
    /// Row ids aligned with `keys`.
    rows: Vec<RowId>,
    alive: Vec<bool>,
    /// `next_jump[i]`: candidate alive index ≥ i (find-with-compression).
    /// Length `len + 1`; index `len` is the "none" sentinel.
    next_jump: Vec<u32>,
    /// `prev_jump[i+1]`: candidate alive index ≤ i, with slot 0 = "none".
    prev_jump: Vec<u32>,
    remaining: usize,
}

impl BucketStore {
    /// Builds a store from the bucket's rows and a key function, sorting by
    /// `(key, row)` without materializing a temporary `(key, row)` pair
    /// vector (the keyed-entry form [`BucketStore::new`] takes exists for
    /// the differential tests).
    fn from_rows(bucket: &[RowId], key_of: impl Fn(RowId) -> u128) -> Self {
        let mut rows: Vec<RowId> = bucket.to_vec();
        rows.sort_unstable_by(|&a, &b| key_of(a).cmp(&key_of(b)).then(a.cmp(&b)));
        let n = rows.len();
        let keys = rows.iter().map(|&r| key_of(r)).collect();
        BucketStore {
            keys,
            rows,
            alive: vec![true; n],
            next_jump: (0..=n as u32).collect(),
            prev_jump: (0..=n as u32).collect(),
            remaining: n,
        }
    }

    #[cfg(test)]
    fn new(mut entries: Vec<(u128, RowId)>) -> Self {
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let n = entries.len();
        let keys = entries.iter().map(|e| e.0).collect();
        let rows = entries.iter().map(|e| e.1).collect();
        BucketStore {
            keys,
            rows,
            alive: vec![true; n],
            next_jump: (0..=n as u32).collect(),
            prev_jump: (0..=n as u32).collect(),
            remaining: n,
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    /// Smallest alive index ≥ `i`, or `len()` if none.
    fn find_next(&mut self, i: usize) -> usize {
        let n = self.len();
        let mut cur = i.min(n);
        // Chase jump pointers to an alive slot (or the sentinel).
        while cur < n && !self.alive[cur] {
            cur = self.next_jump[cur] as usize;
        }
        // Path-compress the chain just walked.
        let root = cur as u32;
        let mut walk = i.min(n);
        while walk < n && !self.alive[walk] {
            let nxt = self.next_jump[walk] as usize;
            self.next_jump[walk] = root;
            walk = nxt;
        }
        cur
    }

    /// Largest alive index ≤ `i`, or `len()` (sentinel) if none.
    ///
    /// Internally `prev_jump` is offset by one so slot 0 encodes "none".
    fn find_prev(&mut self, i: usize) -> usize {
        let n = self.len();
        let mut cur = (i.min(n.wrapping_sub(1)).wrapping_add(1)).min(n);
        if n == 0 {
            return n;
        }
        while cur > 0 && !self.alive[cur - 1] {
            cur = self.prev_jump[cur - 1] as usize;
        }
        let root = cur as u32;
        let mut walk = (i + 1).min(n);
        while walk > 0 && !self.alive[walk - 1] {
            let nxt = self.prev_jump[walk - 1] as usize;
            self.prev_jump[walk - 1] = root;
            walk = nxt;
        }
        if cur == 0 {
            n
        } else {
            cur - 1
        }
    }

    fn kill(&mut self, i: usize) {
        debug_assert!(self.alive[i]);
        self.alive[i] = false;
        self.next_jump[i] = i as u32 + 1;
        self.prev_jump[i] = i as u32; // slot i encodes index i-1 … offset form
        self.remaining -= 1;
    }

    /// Removes and returns the `k` alive tuples whose keys are nearest to
    /// `seed`, by two-sided expansion from the binary-search position.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` tuples remain — templates are sized to the
    /// bucket totals, so this indicates an internal accounting bug.
    fn take_nearest(&mut self, seed: u128, k: usize, out: &mut Vec<RowId>) {
        assert!(
            k <= self.remaining,
            "template draws {k} tuples but only {} remain",
            self.remaining
        );
        let start = self.keys.partition_point(|&key| key < seed);
        let mut right = self.find_next(start);
        let mut left = if start == 0 {
            self.len()
        } else {
            self.find_prev(start - 1)
        };
        let n = self.len();
        for _ in 0..k {
            let pick_right = match (left == n, right == n) {
                (true, true) => unreachable!("remaining invariant guarantees a candidate"),
                (true, false) => true,
                (false, true) => false,
                (false, false) => {
                    let dr = self.keys[right] - seed;
                    let dl = seed - self.keys[left];
                    dr <= dl
                }
            };
            if pick_right {
                out.push(self.rows[right]);
                self.kill(right);
                right = self.find_next(right + 1);
            } else {
                out.push(self.rows[left]);
                self.kill(left);
                left = if left == 0 {
                    n
                } else {
                    self.find_prev(left - 1)
                };
            }
        }
    }

    /// Removes and returns the first `k` alive tuples in storage order.
    fn take_in_order(&mut self, k: usize, out: &mut Vec<RowId>) {
        assert!(k <= self.remaining);
        let mut cur = self.find_next(0);
        for _ in 0..k {
            debug_assert!(cur < self.len());
            out.push(self.rows[cur]);
            self.kill(cur);
            cur = self.find_next(cur + 1);
        }
    }

    /// A uniformly random alive index, if any.
    fn random_alive(&mut self, rng: &mut impl Rng) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let n = self.len();
        let probe = rng.gen_range(0..n);
        let next = self.find_next(probe);
        if next < n {
            Some(next)
        } else {
            let prev = self.find_prev(probe);
            (prev < n).then_some(prev)
        }
    }
}

/// Materializes ECs from templates by drawing QI-near tuples per bucket.
#[derive(Debug)]
pub struct Materializer {
    buckets: Vec<BucketStore>,
    strategy: FillStrategy,
    seed_choice: SeedChoice,
}

impl Materializer {
    /// Builds the per-bucket stores.
    ///
    /// `bucket_rows[j]` lists the rows of bucket `j`; `keys` are the
    /// precomputed Hilbert keys (from [`hilbert_keys`]). Under
    /// [`FillStrategy::Arbitrary`] the Hilbert keys are ignored and tuples
    /// are stored (and later consumed) in original row order.
    pub fn new(keys: &[u128], bucket_rows: &[Vec<RowId>], strategy: FillStrategy) -> Self {
        Self::with_seed_choice(keys, bucket_rows, strategy, SeedChoice::default())
    }

    /// Like [`Materializer::new`] with an explicit EC-seed policy.
    ///
    /// Buckets are independent, so their stores are built (and their
    /// Hilbert orders sorted) across the [`mini_rayon`] pool; the bucket
    /// order — and therefore every downstream draw — is identical at any
    /// thread count.
    pub fn with_seed_choice(
        keys: &[u128],
        bucket_rows: &[Vec<RowId>],
        strategy: FillStrategy,
        seed_choice: SeedChoice,
    ) -> Self {
        let buckets = mini_rayon::par_map(bucket_rows, |rows| {
            BucketStore::from_rows(rows, |r| match strategy {
                FillStrategy::HilbertNearest => keys[r],
                FillStrategy::Arbitrary => r as u128,
            })
        });
        Materializer {
            buckets,
            strategy,
            seed_choice,
        }
    }

    /// Number of tuples not yet assigned to an EC.
    pub fn remaining(&self) -> usize {
        self.buckets.iter().map(|b| b.remaining).sum()
    }

    /// Materializes one EC according to `template` (per-bucket counts).
    ///
    /// # Panics
    ///
    /// Panics if the template is empty or over-draws a bucket (both are
    /// internal errors: `biSplit` conserves bucket totals).
    pub fn fill(&mut self, template: &[u64], rng: &mut impl Rng) -> Vec<RowId> {
        assert_eq!(
            template.len(),
            self.buckets.len(),
            "template arity mismatch"
        );
        let size: u64 = template.iter().sum();
        assert!(size > 0, "template materializes an empty EC");
        let mut out = Vec::with_capacity(size as usize);
        match self.strategy {
            FillStrategy::Arbitrary => {
                for (j, &k) in template.iter().enumerate() {
                    self.buckets[j].take_in_order(k as usize, &mut out);
                }
            }
            FillStrategy::HilbertNearest => {
                // Seed: a tuple from the bucket with the largest demand
                // (ties to the lowest index).
                let seed_bucket = template
                    .iter()
                    .enumerate()
                    .max_by_key(|&(j, &k)| (k, std::cmp::Reverse(j)))
                    .map(|(j, _)| j)
                    .expect("non-empty template");
                let seed_idx = match self.seed_choice {
                    SeedChoice::FirstAlive => {
                        let idx = self.buckets[seed_bucket].find_next(0);
                        debug_assert!(idx < self.buckets[seed_bucket].len());
                        idx
                    }
                    SeedChoice::Random => self.buckets[seed_bucket]
                        .random_alive(rng)
                        .expect("seed bucket has remaining tuples"),
                };
                let seed_key = self.buckets[seed_bucket].keys[seed_idx];
                for (j, &k) in template.iter().enumerate() {
                    self.buckets[j].take_nearest(seed_key, k as usize, &mut out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn store(keys: &[u128]) -> BucketStore {
        BucketStore::new(keys.iter().enumerate().map(|(i, &k)| (k, i)).collect())
    }

    #[test]
    fn find_next_prev_after_kills() {
        let mut s = store(&[10, 20, 30, 40, 50]);
        assert_eq!(s.find_next(0), 0);
        s.kill(0);
        s.kill(1);
        assert_eq!(s.find_next(0), 2);
        assert_eq!(s.find_prev(1), 5, "nothing alive at or before 1");
        assert_eq!(s.find_prev(4), 4);
        s.kill(4);
        assert_eq!(s.find_prev(4), 3);
        s.kill(2);
        s.kill(3);
        assert_eq!(s.find_next(0), 5, "all dead -> sentinel");
        assert_eq!(s.find_prev(4), 5);
        assert_eq!(s.remaining, 0);
    }

    #[test]
    fn take_nearest_prefers_close_keys() {
        // Keys 0,10,20,30,40; seed 22 -> nearest 20, then 30, then 10.
        let mut s = store(&[0, 10, 20, 30, 40]);
        let mut out = Vec::new();
        s.take_nearest(22, 3, &mut out);
        // rows are the original positions of the keys.
        assert_eq!(out, vec![2, 3, 1]);
        assert_eq!(s.remaining, 2);
        // Remaining draws take the rest.
        let mut rest = Vec::new();
        s.take_nearest(22, 2, &mut rest);
        let mut all = rest.clone();
        all.sort_unstable();
        assert_eq!(all, vec![0, 4]);
    }

    #[test]
    fn take_nearest_tie_prefers_right() {
        let mut s = store(&[10, 30]);
        let mut out = Vec::new();
        s.take_nearest(20, 1, &mut out);
        // Equal distance: right side wins by the `dr <= dl` rule.
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn take_nearest_exact_hit() {
        let mut s = store(&[5, 7, 9]);
        let mut out = Vec::new();
        s.take_nearest(7, 2, &mut out);
        assert_eq!(out[0], 1, "exact key match drawn first");
    }

    #[test]
    #[should_panic(expected = "only 2 remain")]
    fn take_nearest_overdraw_panics() {
        let mut s = store(&[1, 2]);
        let mut out = Vec::new();
        s.take_nearest(0, 3, &mut out);
    }

    #[test]
    fn take_in_order_sweeps() {
        let mut s = store(&[30, 10, 20]);
        // Sorted order is 10(row1), 20(row2), 30(row0).
        let mut out = Vec::new();
        s.take_in_order(2, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn random_alive_finds_survivors() {
        let mut s = store(&[1, 2, 3]);
        s.kill(1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let idx = s.random_alive(&mut rng).unwrap();
            assert!(idx == 0 || idx == 2);
        }
        s.kill(0);
        s.kill(2);
        assert!(s.random_alive(&mut rng).is_none());
    }

    #[test]
    fn materializer_consumes_everything() {
        // Two buckets of 3 and 2 tuples; templates [2,1] and [1,1].
        let keys: Vec<u128> = vec![5, 1, 9, 4, 7];
        let buckets = vec![vec![0, 1, 2], vec![3, 4]];
        let mut m = Materializer::new(&keys, &buckets, FillStrategy::HilbertNearest);
        assert_eq!(m.remaining(), 5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ec1 = m.fill(&[2, 1], &mut rng);
        assert_eq!(ec1.len(), 3);
        let ec2 = m.fill(&[1, 1], &mut rng);
        assert_eq!(ec2.len(), 2);
        assert_eq!(m.remaining(), 0);
        // Every row assigned exactly once.
        let mut all: Vec<RowId> = ec1.into_iter().chain(ec2).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn arbitrary_strategy_also_covers() {
        let keys: Vec<u128> = (0..10).map(|i| (i * 37 % 11) as u128).collect();
        let buckets = vec![vec![0, 2, 4, 6, 8], vec![1, 3, 5, 7, 9]];
        let mut m = Materializer::new(&keys, &buckets, FillStrategy::Arbitrary);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut all = Vec::new();
        all.extend(m.fill(&[3, 2], &mut rng));
        all.extend(m.fill(&[2, 3], &mut rng));
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    /// Differential reference for [`BucketStore`]: a naive Vec-scan
    /// implementation of the same operations.
    struct NaiveStore {
        entries: Vec<(u128, RowId, bool)>, // key, row, alive — sorted by key
    }

    impl NaiveStore {
        fn new(keys: &[u128]) -> Self {
            let mut entries: Vec<(u128, RowId, bool)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i, true))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            NaiveStore { entries }
        }

        fn take_nearest(&mut self, seed: u128, k: usize) -> Vec<RowId> {
            let mut out = Vec::new();
            for _ in 0..k {
                // Nearest alive by |key − seed|, ties to the right (the
                // production rule `dr <= dl`), then by position.
                let mut best: Option<(u128, bool, usize)> = None; // (dist, is_left, idx)
                for (idx, &(key, _, alive)) in self.entries.iter().enumerate() {
                    if !alive {
                        continue;
                    }
                    let (dist, is_left) = if key >= seed {
                        (key - seed, false)
                    } else {
                        (seed - key, true)
                    };
                    // Right wins ties between sides; among same side the
                    // two-pointer reaches the *nearest in sorted order*
                    // first: the largest index on the left, the smallest on
                    // the right.
                    let better = match best {
                        None => true,
                        Some((bd, bleft, bidx)) => {
                            dist < bd
                                || (dist == bd
                                    && match (bleft, is_left) {
                                        (true, false) => true,
                                        (false, true) => false,
                                        (true, true) => idx > bidx,
                                        (false, false) => idx < bidx,
                                    })
                        }
                    };
                    if better {
                        best = Some((dist, is_left, idx));
                    }
                }
                let (_, _, idx) = best.expect("k <= alive");
                self.entries[idx].2 = false;
                out.push(self.entries[idx].1);
            }
            out
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// The jump-pointer store and the naive reference pick identical
        /// tuples for arbitrary interleavings of draws.
        #[test]
        fn bucket_store_matches_naive(
            keys in proptest::collection::vec(0u128..64, 1..24),
            ops in proptest::collection::vec((0u128..64, 1usize..4), 1..8),
        ) {
            let mut fast = store(&keys);
            let mut naive = NaiveStore::new(&keys);
            let mut remaining = keys.len();
            for (seed, k) in ops {
                let k = k.min(remaining);
                if k == 0 {
                    break;
                }
                let mut out = Vec::new();
                fast.take_nearest(seed, k, &mut out);
                let expected = naive.take_nearest(seed, k);
                // Same *set* per draw (order within a draw can differ when
                // equal keys flank the seed).
                let mut a = out.clone();
                let mut b = expected.clone();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "seed {} k {}", seed, k);
                remaining -= k;
            }
        }
    }

    #[test]
    fn hilbert_keys_thread_invariant() {
        use betalike_microdata::synthetic::{random_table, SyntheticConfig};
        let _lock = crate::threads_test_lock();
        let t = random_table(&SyntheticConfig {
            rows: 10_000,
            qi_attrs: 3,
            qi_cardinality: 32,
            seed: 11,
            ..Default::default()
        });
        mini_rayon::set_threads(1);
        let serial = hilbert_keys(&t, &[0, 1, 2]);
        mini_rayon::set_threads(8);
        let parallel = hilbert_keys(&t, &[0, 1, 2]);
        mini_rayon::set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn hilbert_keys_reflect_locality() {
        use betalike_microdata::synthetic::{random_table, SyntheticConfig};
        let t = random_table(&SyntheticConfig {
            rows: 100,
            qi_attrs: 2,
            qi_cardinality: 16,
            seed: 4,
            ..Default::default()
        });
        let keys = hilbert_keys(&t, &[0, 1]);
        assert_eq!(keys.len(), 100);
        // Identical QI points get identical keys.
        for a in 0..100 {
            for b in 0..100 {
                if t.value(a, 0) == t.value(b, 0) && t.value(a, 1) == t.value(b, 1) {
                    assert_eq!(keys[a], keys[b]);
                }
            }
        }
    }
}

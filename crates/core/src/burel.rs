//! BUREL — *BUcketization and REallocation for β-Likeness* (Section 4.5).
//!
//! The end-to-end generalization algorithm of the paper:
//!
//! 1. **Bucketize** ([`crate::bucketize::dp_partition`]): group SA values by
//!    ascending frequency into the minimum number of Lemma-2 buckets.
//! 2. **Reallocate** ([`crate::ectree::bi_split`]): grow the ECTree to
//!    determine per-EC, per-bucket draw counts under Theorem 1's
//!    eligibility condition.
//! 3. **Materialize** ([`crate::retrieve::Materializer`]): fill each EC with
//!    Hilbert-nearest tuples, bucket by bucket.
//!
//! The output [`Partition`] provably satisfies (enhanced) β-likeness: every
//! EC passes the eligibility condition, which bounds each bucket's share by
//! `f(p_ℓj)` and therefore every individual value's EC frequency by
//! `f(p_value)` (Theorem 1). `BurelConfig::verify_output` additionally
//! re-checks the published ECs against the *definition* in debug and test
//! builds.

use crate::bucketize::{dp_partition, trivial_partition, SaBucket};
use crate::ectree::{bi_split, BetaEligibility};
use crate::error::{Error, Result};
use crate::model::{verify, BetaLikeness, BoundKind};
use crate::retrieve::{hilbert_keys, FillStrategy, Materializer, SeedChoice};
use betalike_metrics::Partition;
use betalike_microdata::{RowId, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`burel`].
#[derive(Debug, Clone)]
pub struct BurelConfig {
    /// The privacy threshold β (> 0).
    pub beta: f64,
    /// Basic or enhanced bound (paper default: enhanced).
    pub bound: BoundKind,
    /// Seed for the (only) random choice BUREL makes: the seed tuple of
    /// each EC.
    pub seed: u64,
    /// Tuple-selection strategy (Hilbert per the paper, or arbitrary for
    /// the ablation).
    pub strategy: FillStrategy,
    /// EC-seed policy under the Hilbert strategy (random per the paper;
    /// see [`SeedChoice`]).
    pub seed_choice: SeedChoice,
    /// Use the trivial one-value-per-bucket partition instead of the DP
    /// (ablation; see Example 1 of the paper).
    pub trivial_buckets: bool,
    /// Fraction of each bucket's cap the bucketizer leaves unused so the
    /// ECTree's integer rounding has headroom (see
    /// [`crate::bucketize::dp_partition`]). 0 reproduces the paper's
    /// strict `Combinable`; the default 0.25 is required for fine-grained
    /// ECs on smooth SA marginals and never weakens the privacy guarantee.
    pub bucket_slack: f64,
    /// Re-verify the published partition against the β-likeness definition
    /// before returning (cheap: one pass over the output).
    pub verify_output: bool,
}

impl BurelConfig {
    /// The paper's defaults for a given β: enhanced bound, Hilbert
    /// materialization, verification on.
    pub fn new(beta: f64) -> Self {
        BurelConfig {
            beta,
            bound: BoundKind::Enhanced,
            seed: 42,
            strategy: FillStrategy::HilbertNearest,
            seed_choice: SeedChoice::Random,
            trivial_buckets: false,
            bucket_slack: 0.25,
            verify_output: true,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the bound kind.
    pub fn with_bound(mut self, bound: BoundKind) -> Self {
        self.bound = bound;
        self
    }

    /// Sets the fill strategy.
    pub fn with_strategy(mut self, strategy: FillStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Validates the QI/SA selection against the table schema.
pub(crate) fn validate_attrs(table: &Table, qi: &[usize], sa: usize) -> Result<()> {
    let arity = table.schema().arity();
    if sa >= arity {
        return Err(Error::BadSa { index: sa, arity });
    }
    if qi.is_empty() {
        return Err(Error::BadQi("QI set is empty".into()));
    }
    let mut seen = std::collections::BTreeSet::new();
    for &a in qi {
        if a >= arity {
            return Err(Error::BadQi(format!(
                "attribute {a} out of bounds ({arity})"
            )));
        }
        if a == sa {
            return Err(Error::BadQi(format!("attribute {a} is the SA")));
        }
        if !seen.insert(a) {
            return Err(Error::BadQi(format!("attribute {a} duplicated")));
        }
    }
    Ok(())
}

/// Groups table rows by the bucket of their SA value.
///
/// Public so stage-level harnesses (the `perf` binary) can reconstruct the
/// exact materialization input [`burel()`] builds internally.
pub fn rows_per_bucket(table: &Table, sa: usize, buckets: &[SaBucket]) -> Vec<Vec<RowId>> {
    let card = table.schema().attr(sa).cardinality();
    // value -> bucket index (or none for zero-frequency values).
    let mut value_bucket = vec![usize::MAX; card];
    for (j, b) in buckets.iter().enumerate() {
        for &v in &b.values {
            value_bucket[v as usize] = j;
        }
    }
    let mut rows: Vec<Vec<RowId>> = buckets
        .iter()
        .map(|b| Vec::with_capacity(b.count as usize))
        .collect();
    for (r, &v) in table.column(sa).iter().enumerate() {
        let j = value_bucket[v as usize];
        debug_assert_ne!(j, usize::MAX, "every present value belongs to a bucket");
        rows[j].push(r);
    }
    rows
}

/// Runs BUREL and returns a β-likeness-satisfying partition of the table.
///
/// # Errors
///
/// * [`Error::EmptyTable`] / [`Error::BadBeta`] / [`Error::BadQi`] /
///   [`Error::BadSa`] on invalid input;
/// * [`Error::RootNotEligible`] if internal frequency arithmetic is
///   inconsistent (a bug, never observed);
/// * [`Error::Violation`] if output verification is enabled and fails
///   (likewise a bug guard).
pub fn burel(table: &Table, qi: &[usize], sa: usize, cfg: &BurelConfig) -> Result<Partition> {
    validate_attrs(table, qi, sa)?;
    if table.is_empty() {
        return Err(Error::EmptyTable);
    }
    // Reject a bad β before paying the O(n·d) Hilbert transform.
    BetaLikeness::with_bound(cfg.beta, cfg.bound)?;
    let keys = hilbert_keys(table, qi);
    burel_with_keys(table, qi, sa, cfg, &keys)
}

/// Like [`burel()`], with the per-row Hilbert keys precomputed by
/// [`hilbert_keys`] for this exact `(table, qi)` pair.
///
/// Comparison harnesses that run BUREL and SABRE (or several BUREL
/// configurations) against the same table and QI set should compute the
/// keys once and pass them to every run instead of paying the Hilbert
/// transform per invocation — see `bench::algos::QiGeometry`.
///
/// # Errors
///
/// As [`burel()`].
///
/// # Panics
///
/// Panics if `keys.len() != table.num_rows()` — precomputed keys for a
/// different table are a caller bug, not a runtime condition.
pub fn burel_with_keys(
    table: &Table,
    qi: &[usize],
    sa: usize,
    cfg: &BurelConfig,
    keys: &[u128],
) -> Result<Partition> {
    validate_attrs(table, qi, sa)?;
    if table.is_empty() {
        return Err(Error::EmptyTable);
    }
    assert_eq!(
        keys.len(),
        table.num_rows(),
        "precomputed Hilbert keys must cover every row"
    );
    let model = BetaLikeness::with_bound(cfg.beta, cfg.bound)?;
    let dist = table.sa_distribution(sa);

    // Phase 1: bucketization.
    let buckets = if cfg.trivial_buckets {
        trivial_partition(&dist, &model)
    } else {
        dp_partition(&dist, &model, cfg.bucket_slack.clamp(0.0, 0.99))
    };
    debug_assert!(!buckets.is_empty(), "non-empty table yields buckets");

    // Phase 2: reallocation (EC templates).
    let sizes: Vec<u64> = buckets.iter().map(|b| b.count).collect();
    let eligibility = BetaEligibility::from_buckets(&buckets);
    let templates = bi_split(&sizes, &eligibility).ok_or(Error::RootNotEligible)?;

    // Phase 3: materialization.
    let bucket_rows = rows_per_bucket(table, sa, &buckets);
    let mut mat = Materializer::with_seed_choice(keys, &bucket_rows, cfg.strategy, cfg.seed_choice);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut ecs = Vec::with_capacity(templates.len());
    for t in &templates {
        ecs.push(mat.fill(&t.counts, &mut rng));
    }
    debug_assert_eq!(mat.remaining(), 0, "all tuples must be assigned");

    let partition = Partition::new(qi.to_vec(), sa, ecs);
    if cfg.verify_output {
        verify(table, &partition, &model)?;
    }
    Ok(partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_metrics::audit::{achieved_beta, audit_partition, ClosenessMetric};
    use betalike_metrics::loss::average_information_loss;
    use betalike_microdata::census::{self, CensusConfig};
    use betalike_microdata::patients::example2_table;
    use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};

    #[test]
    fn input_validation() {
        let t = example2_table();
        let cfg = BurelConfig::new(2.0);
        assert!(matches!(burel(&t, &[], 2, &cfg), Err(Error::BadQi(_))));
        assert!(matches!(
            burel(&t, &[0, 1], 9, &cfg),
            Err(Error::BadSa { .. })
        ));
        assert!(matches!(burel(&t, &[0, 2], 2, &cfg), Err(Error::BadQi(_))));
        assert!(matches!(burel(&t, &[0, 0], 2, &cfg), Err(Error::BadQi(_))));
        let bad_beta = BurelConfig::new(-1.0);
        assert!(matches!(
            burel(&t, &[0, 1], 2, &bad_beta),
            Err(Error::BadBeta(_))
        ));
    }

    #[test]
    fn example2_produces_three_ecs() {
        // With β = 2 the 19-tuple Example 2 table bucketizes into (5, 6, 8)
        // and biSplit yields leaves [1,1,2], [1,2,2], [3,3,4]: 3 ECs of
        // sizes 4, 5, 10. The worked example assumes the paper's exact
        // Combinable (no slack reserve), so pin bucket_slack = 0.
        let t = example2_table();
        let mut cfg = BurelConfig::new(2.0);
        cfg.bucket_slack = 0.0;
        let p = burel(&t, &[0, 1], 2, &cfg).unwrap();
        assert!(p.validate_cover(t.num_rows()).is_ok());
        let mut sizes: Vec<usize> = p.ecs().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 5, 10]);
        // The output satisfies β = 2 by the definition.
        let model = BetaLikeness::new(2.0).unwrap();
        assert!(verify(&t, &p, &model).is_ok());
    }

    #[test]
    fn output_always_satisfies_beta() {
        for beta in [0.5, 1.0, 2.0, 4.0] {
            for seed in [0, 7] {
                let t = random_table(&SyntheticConfig {
                    rows: 800,
                    qi_attrs: 3,
                    qi_cardinality: 40,
                    sa_cardinality: 12,
                    sa_shape: SaShape::Zipf(1.1),
                    seed,
                });
                let cfg = BurelConfig::new(beta).with_seed(seed);
                let p = burel(&t, &[0, 1, 2], 3, &cfg).unwrap();
                assert!(p.validate_cover(800).is_ok());
                let real_beta = achieved_beta(&t, &p);
                assert!(
                    real_beta <= beta + 1e-9,
                    "beta {beta} seed {seed}: achieved {real_beta}"
                );
            }
        }
    }

    #[test]
    fn thread_count_invariance() {
        // The parallel pipeline's core promise: the same BurelConfig
        // publishes a bit-identical Partition (and hence identical audit
        // readings) at any thread count.
        let _lock = crate::threads_test_lock();
        let t = census_like(4_000);
        let qi = [0, 1, 2];
        let cfg = BurelConfig::new(3.0).with_seed(9);
        mini_rayon::set_threads(1);
        let serial = burel(&t, &qi, 5, &cfg).unwrap();
        let serial_audit = audit_partition(&t, &serial, ClosenessMetric::EqualDistance);
        for threads in [2, 8] {
            mini_rayon::set_threads(threads);
            let parallel = burel(&t, &qi, 5, &cfg).unwrap();
            assert_eq!(
                serial.ecs(),
                parallel.ecs(),
                "partition differs at {threads} threads"
            );
            let audit = audit_partition(&t, &parallel, ClosenessMetric::EqualDistance);
            assert_eq!(serial_audit, audit, "audit differs at {threads} threads");
        }
        mini_rayon::set_threads(0);
    }

    #[test]
    fn precomputed_keys_match_recomputed() {
        let t = census_like(2_000);
        let qi = [0, 1];
        let cfg = BurelConfig::new(2.5).with_seed(4);
        let keys = crate::retrieve::hilbert_keys(&t, &qi);
        let direct = burel(&t, &qi, 5, &cfg).unwrap();
        let shared = burel_with_keys(&t, &qi, 5, &cfg, &keys).unwrap();
        assert_eq!(direct.ecs(), shared.ecs());
    }

    #[test]
    #[should_panic(expected = "cover every row")]
    fn wrong_key_count_panics() {
        let t = census_like(100);
        let keys = vec![0u128; 99];
        let _ = burel_with_keys(&t, &[0, 1], 5, &BurelConfig::new(2.0), &keys);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = random_table(&SyntheticConfig {
            rows: 400,
            seed: 3,
            ..Default::default()
        });
        let cfg = BurelConfig::new(2.0).with_seed(11);
        let a = burel(&t, &[0, 1], 2, &cfg).unwrap();
        let b = burel(&t, &[0, 1], 2, &cfg).unwrap();
        assert_eq!(a.ecs(), b.ecs());
    }

    #[test]
    fn larger_beta_means_lower_loss() {
        // Figure 5(a): information quality rises with β.
        let t = census_like(6_000);
        let qi = [0, 1, 2];
        let loose = burel(&t, &qi, 5, &BurelConfig::new(5.0)).unwrap();
        let tight = burel(&t, &qi, 5, &BurelConfig::new(0.4)).unwrap();
        let ail_loose = average_information_loss(&t, &loose);
        let ail_tight = average_information_loss(&t, &tight);
        assert!(
            ail_loose < ail_tight,
            "loose β must lose less: {ail_loose} vs {ail_tight}"
        );
    }

    #[test]
    fn hilbert_beats_arbitrary_fill() {
        // The ablation DESIGN.md calls out: Hilbert locality must produce
        // smaller bounding boxes than arbitrary assignment.
        let t = census_like(5_000);
        let qi = [0, 2];
        let hil = burel(&t, &qi, 5, &BurelConfig::new(3.0)).unwrap();
        let arb = burel(
            &t,
            &qi,
            5,
            &BurelConfig::new(3.0).with_strategy(FillStrategy::Arbitrary),
        )
        .unwrap();
        let ail_h = average_information_loss(&t, &hil);
        let ail_a = average_information_loss(&t, &arb);
        assert!(ail_h < ail_a, "hilbert {ail_h} must beat arbitrary {ail_a}");
    }

    #[test]
    fn dp_vs_trivial_buckets_ablation() {
        // Both bucketizations must produce valid β-likeness publications.
        // Which one loses less information is scale-dependent: merged (DP)
        // buckets keep per-bucket counts ≥ 1 deeper into the ECTree (the
        // Example 1 regime, where rare values have a handful of tuples),
        // while singleton buckets enjoy more per-value slack at large scale
        // because the eligibility cap applies to the bucket *sum*.
        // EXPERIMENTS.md discusses the measurement; here we pin the
        // invariants.
        let t = census_like(5_000);
        let qi = [0, 2];
        let model = BetaLikeness::new(3.0).unwrap();
        let dp = burel(&t, &qi, 5, &BurelConfig::new(3.0)).unwrap();
        let mut cfg = BurelConfig::new(3.0);
        cfg.trivial_buckets = true;
        let trivial = burel(&t, &qi, 5, &cfg).unwrap();
        for p in [&dp, &trivial] {
            assert!(p.validate_cover(t.num_rows()).is_ok());
            assert!(verify(&t, p, &model).is_ok());
        }
        // Both must be real partitions (not one giant EC) at this scale.
        assert!(dp.num_ecs() > 4);
        assert!(trivial.num_ecs() > 4);
    }

    #[test]
    fn census_run_full_audit() {
        let t = census_like(8_000);
        let qi = [0, 1, 2];
        let p = burel(&t, &qi, 5, &BurelConfig::new(4.0)).unwrap();
        assert!(p.validate_cover(t.num_rows()).is_ok());
        let audit = audit_partition(&t, &p, ClosenessMetric::EqualDistance);
        assert!(audit.max_beta <= 4.0 + 1e-9);
        assert!(audit.num_ecs > 1, "table must actually be partitioned");
        // β-likeness caps every value's EC share well below 1.
        assert!(audit.min_distinct_l >= 2);
    }

    #[test]
    fn basic_bound_is_looser_than_enhanced() {
        let t = census_like(4_000);
        let qi = [0, 2];
        let enhanced = burel(&t, &qi, 5, &BurelConfig::new(4.0)).unwrap();
        let basic = burel(
            &t,
            &qi,
            5,
            &BurelConfig::new(4.0).with_bound(BoundKind::Basic),
        )
        .unwrap();
        // A looser bound can only allow finer partitions.
        assert!(basic.num_ecs() >= enhanced.num_ecs());
        let ail_b = average_information_loss(&t, &basic);
        let ail_e = average_information_loss(&t, &enhanced);
        assert!(ail_b <= ail_e + 1e-9);
    }

    fn census_like(rows: usize) -> betalike_microdata::Table {
        census::generate(&CensusConfig::new(rows, 99))
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The pipeline invariant, fuzzed over table shape, skew, β and
            /// seeds: BUREL always covers the table exactly and always
            /// satisfies the definition.
            #[test]
            fn burel_is_always_valid(
                rows in 50usize..600,
                sa_card in 2usize..12,
                zipf_centi in 0u32..250,
                beta_centi in 20u32..600,
                seed in 0u64..1000,
            ) {
                let t = random_table(&SyntheticConfig {
                    rows,
                    qi_attrs: 2,
                    qi_cardinality: 24,
                    sa_cardinality: sa_card,
                    sa_shape: SaShape::Zipf(zipf_centi as f64 / 100.0),
                    seed,
                });
                let beta = beta_centi as f64 / 100.0;
                let cfg = BurelConfig::new(beta).with_seed(seed);
                let p = burel(&t, &[0, 1], 2, &cfg).unwrap();
                prop_assert!(p.validate_cover(rows).is_ok());
                let model = BetaLikeness::new(beta).unwrap();
                prop_assert!(verify(&t, &p, &model).is_ok());
            }

            /// Slack reserve and bound kind never break the guarantee.
            #[test]
            fn burel_config_sweep_is_always_valid(
                slack_centi in 0u32..80,
                basic in proptest::bool::ANY,
                trivial in proptest::bool::ANY,
                seed in 0u64..100,
            ) {
                let t = random_table(&SyntheticConfig {
                    rows: 300,
                    qi_attrs: 2,
                    qi_cardinality: 16,
                    sa_cardinality: 6,
                    sa_shape: SaShape::Zipf(1.0),
                    seed,
                });
                let mut cfg = BurelConfig::new(1.5).with_seed(seed);
                cfg.bucket_slack = slack_centi as f64 / 100.0;
                cfg.trivial_buckets = trivial;
                if basic {
                    cfg.bound = BoundKind::Basic;
                }
                let p = burel(&t, &[0, 1], 2, &cfg).unwrap();
                prop_assert!(p.validate_cover(300).is_ok());
                let model = BetaLikeness::with_bound(1.5, cfg.bound).unwrap();
                prop_assert!(verify(&t, &p, &model).is_ok());
            }
        }
    }
}

//! The reallocation phase of BUREL (Section 4.4): the **ECTree**.
//!
//! Given a bucket partition, a binary tree of candidate EC "templates" is
//! grown top-down. The root draws every tuple (all of bucket `j`'s tuples
//! for every `j`); a node splits into two children by halving each
//! per-bucket count (`c1 = ⌊c/2⌋`, `c2 = c − c1`, matching the paper's
//! worked Example 2), and a split is allowed only if **both** children
//! satisfy the eligibility condition of Theorem 1:
//!
//! > for every bucket `j`: `x_j / |G| ≤ f(p_ℓj)`.
//!
//! When no node can split further, the leaves prescribe how many tuples each
//! EC draws from each bucket (`biSplit`).
//!
//! Eligibility is expressed through the [`Eligibility`] trait so the same
//! tree drives both BUREL (β-likeness caps) and the SABRE-style t-closeness
//! baseline (EMD budget).

use crate::bucketize::SaBucket;

/// Decides whether an EC drawing `counts[j]` tuples from bucket `j` may be
/// published.
pub trait Eligibility {
    /// `counts` has one entry per bucket; the EC size is `counts.sum()`.
    fn eligible(&self, counts: &[u64]) -> bool;
}

/// Theorem 1's eligibility condition for β-likeness: every bucket's share of
/// the EC stays within the bucket's frequency cap `f(p_ℓj)`.
///
/// The check compares `x_j ≤ cap_j · |G|` in the same floating-point form as
/// the bucketizer's combinability check, so a bucket partition accepted by
/// `DPpartition` always yields an eligible root.
#[derive(Debug, Clone)]
pub struct BetaEligibility {
    caps: Vec<f64>,
}

impl BetaEligibility {
    /// Builds the checker from the bucketizer's output.
    pub fn from_buckets(buckets: &[SaBucket]) -> Self {
        BetaEligibility {
            caps: buckets.iter().map(|b| b.cap).collect(),
        }
    }

    /// Builds the checker from raw caps (used by tests and ablations).
    pub fn from_caps(caps: Vec<f64>) -> Self {
        BetaEligibility { caps }
    }
}

impl Eligibility for BetaEligibility {
    fn eligible(&self, counts: &[u64]) -> bool {
        debug_assert_eq!(counts.len(), self.caps.len());
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return false;
        }
        let total = total as f64;
        counts
            .iter()
            .zip(&self.caps)
            .all(|(&x, &cap)| x as f64 <= cap * total)
    }
}

/// A leaf of the ECTree: how many tuples the EC draws from each bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcTemplate {
    /// Per-bucket draw counts.
    pub counts: Vec<u64>,
}

impl EcTemplate {
    /// Total EC size.
    pub fn size(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Grows the ECTree from the root `bucket_sizes` and returns its leaves
/// (the paper's `biSplit`).
///
/// Returns `None` if the root itself is not eligible — with a bucket
/// partition from `DPpartition` this cannot happen and callers treat it as
/// an internal error.
pub fn bi_split(bucket_sizes: &[u64], eligibility: &impl Eligibility) -> Option<Vec<EcTemplate>> {
    let root = EcTemplate {
        counts: bucket_sizes.to_vec(),
    };
    if root.size() == 0 || !eligibility.eligible(&root.counts) {
        return None;
    }
    let mut leaves = Vec::new();
    // Explicit stack: EC counts can produce deep trees on large tables and
    // recursion depth is O(log |DB|) anyway, but the stack keeps it robust.
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        match try_split(&node, eligibility) {
            Some((left, right)) => {
                stack.push(left);
                stack.push(right);
            }
            None => leaves.push(node),
        }
    }
    // Deterministic output order (stack traversal reverses); sort by
    // nothing fancy — restore a stable order by size-then-counts.
    leaves.reverse();
    Some(leaves)
}

/// Attempts the paper's halving split; returns the two children if both are
/// non-empty and eligible.
fn try_split(
    node: &EcTemplate,
    eligibility: &impl Eligibility,
) -> Option<(EcTemplate, EcTemplate)> {
    let mut left = Vec::with_capacity(node.counts.len());
    let mut right = Vec::with_capacity(node.counts.len());
    for &c in &node.counts {
        let l = c / 2;
        left.push(l);
        right.push(c - l);
    }
    let left = EcTemplate { counts: left };
    let right = EcTemplate { counts: right };
    if left.size() == 0 || right.size() == 0 {
        return None;
    }
    if eligibility.eligible(&left.counts) && eligibility.eligible(&right.counts) {
        Some((left, right))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The Example 2 setup: buckets of sizes (5, 6, 8) over a 19-tuple
    /// table, caps f(2/19), f(3/19), f(4/19) with β = 2.
    fn example2() -> (Vec<u64>, BetaEligibility) {
        let model = crate::model::BetaLikeness::new(2.0).unwrap();
        let caps = vec![
            model.max_ec_freq(2.0 / 19.0),
            model.max_ec_freq(3.0 / 19.0),
            model.max_ec_freq(4.0 / 19.0),
        ];
        (vec![5, 6, 8], BetaEligibility::from_caps(caps))
    }

    #[test]
    fn example2_tree_matches_paper() {
        // Figure 3: [5,6,8] splits into [2,3,4] and [3,3,4]; [2,3,4] splits
        // into [1,1,2] and [1,2,2]; [3,3,4] cannot split (child [2,2,2]
        // would put 2/6 > f(2/19) ≈ 0.316 in bucket 1).
        let (sizes, elig) = example2();
        let leaves = bi_split(&sizes, &elig).unwrap();
        let mut got: Vec<Vec<u64>> = leaves.iter().map(|l| l.counts.clone()).collect();
        got.sort();
        assert_eq!(
            got,
            vec![vec![1, 1, 2], vec![1, 2, 2], vec![3, 3, 4]],
            "leaves must match the paper's Figure 3"
        );
    }

    #[test]
    fn example2_intermediate_checks() {
        let (_, elig) = example2();
        // The specific eligibility calls the paper walks through.
        assert!(elig.eligible(&[5, 6, 8]));
        assert!(elig.eligible(&[2, 3, 4]));
        assert!(elig.eligible(&[3, 3, 4]));
        assert!(elig.eligible(&[1, 1, 2]));
        assert!(elig.eligible(&[1, 2, 2]));
        assert!(
            !elig.eligible(&[2, 2, 2]),
            "2/6 > f(2/19): the rejected split"
        );
    }

    #[test]
    fn leaves_conserve_bucket_totals() {
        let (sizes, elig) = example2();
        let leaves = bi_split(&sizes, &elig).unwrap();
        for (j, &expected) in sizes.iter().enumerate() {
            let sum: u64 = leaves.iter().map(|l| l.counts[j]).sum();
            assert_eq!(sum, expected, "bucket {j} totals must be conserved");
        }
    }

    #[test]
    fn ineligible_root_returns_none() {
        let elig = BetaEligibility::from_caps(vec![0.1, 0.1]);
        assert!(bi_split(&[5, 5], &elig).is_none());
        // Empty root too.
        let ok = BetaEligibility::from_caps(vec![1.0, 1.0]);
        assert!(bi_split(&[0, 0], &ok).is_none());
    }

    #[test]
    fn permissive_caps_split_to_singletons() {
        // cap = 1 allows any composition: the tree splits all the way down
        // to single-tuple ECs.
        let elig = BetaEligibility::from_caps(vec![1.0]);
        let leaves = bi_split(&[9], &elig).unwrap();
        assert_eq!(leaves.len(), 9);
        assert!(leaves.iter().all(|l| l.size() == 1));
    }

    #[test]
    fn zero_count_buckets_allowed_in_templates() {
        // A bucket can contribute 0 tuples to an EC ("In the general case,
        // an EC could also draw 0 tuples from some bucket").
        let elig = BetaEligibility::from_caps(vec![0.6, 0.6]);
        let leaves = bi_split(&[1, 1], &elig).unwrap();
        // [1,1] halves into [0,1]? No: ⌊1/2⌋ = 0 for both, children [0,0]
        // and [1,1] — empty child, so no split: single leaf [1,1].
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].counts, vec![1, 1]);
        // [2,1] under caps 0.7: root shares (2/3, 1/3) pass; children
        // [1,0] (share 1/1 in bucket 0 > 0.7) and [1,1] — the [1,0] child
        // is ineligible, so the split is rejected.
        let elig7 = BetaEligibility::from_caps(vec![0.7, 0.7]);
        let leaves2 = bi_split(&[2, 1], &elig7).unwrap();
        assert_eq!(leaves2.len(), 1, "split rejected by the cap");
    }

    #[test]
    fn eligibility_rejects_empty_ec() {
        let elig = BetaEligibility::from_caps(vec![1.0]);
        assert!(!elig.eligible(&[0]));
    }

    proptest! {
        #[test]
        fn leaves_always_eligible_and_conserving(
            spec in proptest::collection::vec((0u64..64, 5u32..100), 1..6),
        ) {
            let sizes: Vec<u64> = spec.iter().map(|&(s, _)| s).collect();
            let total: u64 = sizes.iter().sum();
            prop_assume!(total > 0);
            let caps: Vec<f64> = spec.iter().map(|&(_, c)| c as f64 / 100.0).collect();
            let elig = BetaEligibility::from_caps(caps);
            if let Some(leaves) = bi_split(&sizes, &elig) {
                for leaf in &leaves {
                    prop_assert!(elig.eligible(&leaf.counts), "leaf {:?}", leaf.counts);
                    prop_assert!(leaf.size() > 0);
                }
                for (j, &expected) in sizes.iter().enumerate() {
                    let sum: u64 = leaves.iter().map(|l| l.counts[j]).sum();
                    prop_assert_eq!(sum, expected);
                }
            } else {
                // Root must genuinely be ineligible.
                prop_assert!(!elig.eligible(&sizes));
            }
        }
    }
}

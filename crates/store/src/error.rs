//! Structured failures for the snapshot formats and the on-disk store.
//!
//! Every reader-side failure names the *section* it happened in, so a
//! corrupted file reports "section `col.2` failed its checksum" rather than
//! a bare deserialization panic — the corruption tests assert exactly this.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Everything reading or writing a snapshot can fail with.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (reading past EOF is reported as
    /// [`StoreError::Truncated`] instead, with the section named).
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The magic the reader expected (`BTBL` / `BPUB`).
        expected: &'static str,
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is newer than this reader supports.
    VersionSkew {
        /// Version recorded in the file.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The input ended before the named section was complete.
    Truncated {
        /// Section (or frame part) being read when bytes ran out.
        section: String,
    },
    /// A section's payload does not match its recorded checksum.
    Corrupt {
        /// The section whose checksum failed.
        section: String,
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually read.
        got: u64,
    },
    /// A section decoded but its contents are inconsistent (bad lengths,
    /// out-of-domain codes, a schema that fails validation, …).
    Malformed {
        /// The offending section.
        section: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o: {e}"),
            StoreError::BadMagic { expected, found } => {
                write!(f, "not a {expected} file (magic bytes {found:02x?})")
            }
            StoreError::VersionSkew { found, supported } => write!(
                f,
                "format version {found} is newer than this reader (supports <= {supported})"
            ),
            StoreError::Truncated { section } => {
                write!(f, "truncated input while reading section `{section}`")
            }
            StoreError::Corrupt {
                section,
                expected,
                got,
            } => write!(
                f,
                "section `{section}` failed its checksum (recorded {expected:#018x}, computed {got:#018x})"
            ),
            StoreError::Malformed { section, detail } => {
                write!(f, "section `{section}` is malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Builds a [`StoreError::Malformed`] for `section`.
    pub fn malformed(section: &str, detail: impl fmt::Display) -> Self {
        StoreError::Malformed {
            section: section.to_string(),
            detail: detail.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_section() {
        let e = StoreError::Corrupt {
            section: "col.2".into(),
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("`col.2`"));
        let e = StoreError::Truncated {
            section: "schema".into(),
        };
        assert!(e.to_string().contains("`schema`"));
        let e = StoreError::malformed("params", "bad algo");
        assert!(e.to_string().contains("`params`") && e.to_string().contains("bad algo"));
    }
}

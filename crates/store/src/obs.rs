//! Store-side observability handles: latency histograms for the durable
//! paths (save / load / every fsync) plus counters and gauges mirroring
//! the store's health state, all backed by the server's shared
//! `betalike_obs::Registry`.
//!
//! The handles are attached *after* [`crate::ArtifactStore::open_with`]
//! (via [`crate::ArtifactStore::attach_obs`]) so the store itself stays
//! constructible without a registry — the `betalike-store` CLI and the
//! fault-injection torture suite never pay for instrumentation they do
//! not read. Gauges and counters always update once attached (the
//! server's `health` response is derived from them); the `timings` flag
//! gates only the clock reads and histogram records, which is what the
//! perf suite's overhead criterion measures.

use betalike_obs::{Clock, Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Shared instrumentation handles for one [`crate::ArtifactStore`].
#[derive(Debug, Clone)]
pub struct StoreObs {
    /// Time source for the latency histograms.
    pub clock: Arc<dyn Clock>,
    /// Whether to read the clock and record latency histograms; counters
    /// and gauges update regardless.
    pub timings: bool,
    /// Whole-call [`crate::ArtifactStore::save`] latency (nanoseconds).
    pub save_ns: Arc<Histogram>,
    /// Whole-call [`crate::ArtifactStore::load`] latency (nanoseconds).
    pub load_ns: Arc<Histogram>,
    /// Per-`fsync(2)` latency across artifact and manifest writes
    /// (nanoseconds).
    pub fsync_ns: Arc<Histogram>,
    /// Files moved to `quarantine/` since attach.
    pub quarantines: Arc<Counter>,
    /// Artifacts currently in the manifest.
    pub stored: Arc<Gauge>,
    /// Consecutive save failures (mirrors
    /// [`crate::ArtifactStore::write_failures`]).
    pub write_failures: Arc<Gauge>,
    /// 1 while [`crate::ArtifactStore::degraded`], else 0.
    pub degraded: Arc<Gauge>,
}

impl StoreObs {
    /// Handles registered under the `store_*` names in `registry`.
    pub fn from_registry(registry: &Registry, clock: Arc<dyn Clock>, timings: bool) -> Self {
        StoreObs {
            clock,
            timings,
            save_ns: registry.histogram("store_save_ns"),
            load_ns: registry.histogram("store_load_ns"),
            fsync_ns: registry.histogram("store_fsync_ns"),
            quarantines: registry.counter("store_quarantines"),
            stored: registry.gauge("store_artifacts"),
            write_failures: registry.gauge("store_write_failures"),
            degraded: registry.gauge("store_degraded"),
        }
    }

    /// The clock reading when `timings` is on, else `None` — pair with
    /// [`StoreObs::record_since`].
    pub(crate) fn start(&self) -> Option<u64> {
        if self.timings {
            Some(self.clock.now_ns())
        } else {
            None
        }
    }

    /// Records `now - start` into `hist` when [`StoreObs::start`] armed.
    pub(crate) fn record_since(&self, hist: &Histogram, start: Option<u64>) {
        if let Some(start) = start {
            hist.record(self.clock.now_ns().saturating_sub(start));
        }
    }
}

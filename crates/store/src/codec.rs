//! Section framing shared by the BTBL and BPUB formats.
//!
//! Both formats are a magic + version prologue followed by named, length
//! prefixed, checksummed *sections*:
//!
//! ```text
//! file    := magic(4) version(u32 LE) section*
//! section := name_len(u16 LE) name(UTF-8) payload_len(u64 LE) payload
//!            checksum(u64 LE = FNV-1a of payload)
//! ```
//!
//! All integers are little-endian; `f64`s are stored as their raw IEEE-754
//! bits so snapshots round-trip *bit-identically*. A [`SectionWriter`]
//! buffers one section's payload and emits the frame on
//! [`SectionWriter::finish`]; a [`Section`] reads one frame, verifies its
//! checksum eagerly, and then hands out typed fields with
//! truncation-aware errors that name the section.

use crate::error::{Result, StoreError};
use betalike_microdata::hash::fnv1a64;
use std::io::{BufRead, Read, Write};

/// Upper bound on a single section payload (1 GiB): a corrupted length
/// field must not drive a multi-terabyte allocation.
pub const MAX_SECTION_BYTES: u64 = 1 << 30;

/// Upper bound on a section name.
const MAX_NAME_BYTES: u16 = 256;

/// Writes `magic` and `version`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_prologue<W: Write>(w: &mut W, magic: &[u8; 4], version: u32) -> Result<()> {
    w.write_all(magic)?;
    w.write_all(&version.to_le_bytes())?;
    Ok(())
}

/// Reads and validates the prologue, returning the file's version.
///
/// # Errors
///
/// [`StoreError::BadMagic`] on foreign bytes, [`StoreError::VersionSkew`]
/// when the file is newer than `supported`, [`StoreError::Truncated`] when
/// the input ends inside the prologue.
pub fn read_prologue<R: BufRead>(r: &mut R, magic: &'static str, supported: u32) -> Result<u32> {
    let mut found = [0u8; 4];
    read_exact(r, &mut found, "magic")?;
    if found != magic.as_bytes() {
        return Err(StoreError::BadMagic {
            expected: magic,
            found,
        });
    }
    let mut v = [0u8; 4];
    read_exact(r, &mut v, "version")?;
    let version = u32::from_le_bytes(v);
    if version > supported {
        return Err(StoreError::VersionSkew {
            found: version,
            supported,
        });
    }
    Ok(version)
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], section: &str) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                section: section.to_string(),
            }
        } else {
            StoreError::Io(e)
        }
    })
}

/// Accumulates one section's payload, then emits the framed, checksummed
/// section.
#[derive(Debug)]
pub struct SectionWriter {
    name: String,
    buf: Vec<u8>,
}

impl SectionWriter {
    /// Starts a section named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SectionWriter {
            name: name.into(),
            buf: Vec::new(),
        }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes (length is *not* prefixed; pair with a count the
    /// reader already knows, or prefix one yourself).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Payload size so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the payload is still empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Frames and writes the section.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; `Malformed` if the name or payload exceeds
    /// the format limits (a writer bug, surfaced rather than silently
    /// producing an unreadable file).
    pub fn finish<W: Write>(self, w: &mut W) -> Result<()> {
        if self.name.len() > MAX_NAME_BYTES as usize {
            return Err(StoreError::malformed(&self.name, "section name too long"));
        }
        if self.buf.len() as u64 > MAX_SECTION_BYTES {
            return Err(StoreError::malformed(&self.name, "section payload too big"));
        }
        w.write_all(&(self.name.len() as u16).to_le_bytes())?;
        w.write_all(self.name.as_bytes())?;
        w.write_all(&(self.buf.len() as u64).to_le_bytes())?;
        w.write_all(&self.buf)?;
        w.write_all(&fnv1a64(&self.buf).to_le_bytes())?;
        Ok(())
    }
}

/// One section read from the input, checksum already verified. Typed
/// accessors consume the payload left to right.
#[derive(Debug)]
pub struct Section {
    name: String,
    buf: Vec<u8>,
    pos: usize,
}

impl Section {
    /// Reads the next section frame and verifies its checksum.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input ends mid-frame,
    /// [`StoreError::Corrupt`] on a checksum mismatch.
    pub fn read<R: BufRead>(r: &mut R) -> Result<Section> {
        let mut len2 = [0u8; 2];
        read_exact(r, &mut len2, "section header")?;
        let name_len = u16::from_le_bytes(len2);
        if name_len > MAX_NAME_BYTES {
            return Err(StoreError::malformed(
                "section header",
                format!("section name length {name_len} exceeds the format limit"),
            ));
        }
        let mut name_bytes = vec![0u8; name_len as usize];
        read_exact(r, &mut name_bytes, "section header")?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| StoreError::malformed("section header", "section name is not UTF-8"))?;
        let mut len8 = [0u8; 8];
        read_exact(r, &mut len8, &name)?;
        let payload_len = u64::from_le_bytes(len8);
        if payload_len > MAX_SECTION_BYTES {
            return Err(StoreError::malformed(
                &name,
                format!("payload length {payload_len} exceeds the format limit"),
            ));
        }
        let mut buf = vec![0u8; payload_len as usize];
        read_exact(r, &mut buf, &name)?;
        let mut sum = [0u8; 8];
        read_exact(r, &mut sum, &name)?;
        let expected = u64::from_le_bytes(sum);
        let got = fnv1a64(&buf);
        if got != expected {
            return Err(StoreError::Corrupt {
                section: name,
                expected,
                got,
            });
        }
        Ok(Section { name, buf, pos: 0 })
    }

    /// [`Section::read`], additionally requiring the section be named
    /// `want`.
    ///
    /// # Errors
    ///
    /// As [`Section::read`], plus `Malformed` when a different section
    /// arrives (format layout violation).
    pub fn expect<R: BufRead>(r: &mut R, want: &str) -> Result<Section> {
        let s = Self::read(r)?;
        if s.name != want {
            return Err(StoreError::malformed(
                want,
                format!("expected section `{want}`, found `{}`", s.name),
            ));
        }
        Ok(s)
    }

    /// The section's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unconsumed payload bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let truncated = || StoreError::Truncated {
            section: self.name.clone(),
        };
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        let out = self.buf.get(self.pos..end).ok_or_else(truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Takes exactly `N` bytes as an array. `take` already guarantees the
    /// length, so the conversion error arm is dead — it still returns
    /// `Truncated` rather than panicking (the decode path is panic-free
    /// by contract, and betalike-lint enforces it).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let bytes = self.take(N)?;
        <[u8; N]>::try_from(bytes).map_err(|_| StoreError::Truncated {
            section: self.name.clone(),
        })
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// `Truncated` when the payload is exhausted.
    pub fn u8(&mut self) -> Result<u8> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// `Truncated` when the payload is exhausted.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// `Truncated` when the payload is exhausted.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// `Truncated` when the payload is exhausted.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads an `f64` from its raw bits.
    ///
    /// # Errors
    ///
    /// `Truncated` when the payload is exhausted.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// `Truncated` on exhaustion; `Malformed` if the value does not fit a
    /// `usize`.
    pub fn len64(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::malformed(&self.name, format!("length {v} overflows usize")))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// `Truncated` on exhaustion; `Malformed` on invalid UTF-8 or an
    /// implausible length.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(StoreError::Truncated {
                section: self.name.clone(),
            });
        }
        let name = self.name.clone();
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::malformed(&name, "string is not UTF-8"))
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// `Truncated` when fewer remain.
    pub fn bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        Ok(self.take(n)?.to_vec())
    }

    /// Asserts the payload was fully consumed — trailing bytes mean the
    /// writer and reader disagree about the layout.
    ///
    /// # Errors
    ///
    /// `Malformed` naming the section when bytes remain.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(StoreError::malformed(
                &self.name,
                format!("{} unread trailing bytes", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(name: &str, fill: impl FnOnce(&mut SectionWriter)) -> Vec<u8> {
        let mut w = SectionWriter::new(name);
        fill(&mut w);
        let mut out = Vec::new();
        w.finish(&mut out).unwrap();
        out
    }

    #[test]
    fn roundtrip_all_field_types() {
        let bytes = frame("t", |w| {
            w.u8(7);
            w.u32(40_000);
            w.u64(u64::MAX - 1);
            w.f64(0.1 + 0.2);
            w.str("héllo");
            w.bytes(&[1, 2, 3]);
        });
        let mut r = &bytes[..];
        let mut s = Section::expect(&mut r, "t").unwrap();
        assert_eq!(s.u8().unwrap(), 7);
        assert_eq!(s.u32().unwrap(), 40_000);
        assert_eq!(s.u64().unwrap(), u64::MAX - 1);
        assert_eq!(s.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(s.str().unwrap(), "héllo");
        assert_eq!(s.bytes(3).unwrap(), vec![1, 2, 3]);
        s.finish().unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn checksum_mismatch_names_section() {
        let mut bytes = frame("payload", |w| w.u64(42));
        // Flip a payload byte (name_len 2 + name 7 + len 8 = 17 bytes in).
        bytes[17] ^= 0xff;
        let err = Section::read(&mut &bytes[..]).unwrap_err();
        match err {
            StoreError::Corrupt { section, .. } => assert_eq!(section, "payload"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_names_section() {
        let bytes = frame("data", |w| w.bytes(&[9; 100]));
        for cut in [1, 5, 30, bytes.len() - 1] {
            let err = Section::read(&mut &bytes[..cut]).unwrap_err();
            match err {
                StoreError::Truncated { section } => {
                    assert!(
                        section == "data" || section == "section header",
                        "{section}"
                    );
                }
                other => panic!("expected Truncated at cut {cut}, got {other:?}"),
            }
        }
    }

    #[test]
    fn over_read_and_trailing_bytes_are_errors() {
        let bytes = frame("s", |w| w.u32(1));
        let mut s = Section::read(&mut &bytes[..]).unwrap();
        assert!(matches!(s.u64(), Err(StoreError::Truncated { .. })));
        let mut s = Section::read(&mut &bytes[..]).unwrap();
        assert_eq!(s.u8().unwrap(), 1);
        assert!(matches!(s.finish(), Err(StoreError::Malformed { .. })));
    }

    #[test]
    fn wrong_section_name_is_malformed() {
        let bytes = frame("a", |w| w.u8(0));
        assert!(matches!(
            Section::expect(&mut &bytes[..], "b"),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn prologue_validates_magic_and_version() {
        let mut buf = Vec::new();
        write_prologue(&mut buf, b"BTBL", 1).unwrap();
        assert_eq!(read_prologue(&mut &buf[..], "BTBL", 1).unwrap(), 1);
        assert!(matches!(
            read_prologue(&mut &buf[..], "BPUB", 1),
            Err(StoreError::BadMagic { .. })
        ));
        assert!(matches!(
            read_prologue(&mut &buf[..], "BTBL", 0),
            Err(StoreError::VersionSkew {
                found: 1,
                supported: 0
            })
        ));
        assert!(matches!(
            read_prologue(&mut &buf[..3], "BTBL", 1),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        // A frame whose payload length field claims 2^40 bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(b'x');
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            Section::read(&mut &bytes[..]),
            Err(StoreError::Malformed { .. })
        ));
    }
}

//! BPUB — the durable envelope of one published artifact.
//!
//! A `.bpub` file is everything `betalike-serve` needs to answer `count`
//! and `audit` for a handle *bit-identically* after a restart, with zero
//! pipeline recomputation:
//!
//! ```text
//! "BPUB" version(u32)
//! "params"  handle, canonical parameter string, dataset descriptor
//!           (generator name / rows / seed / registry key), algo, the
//!           normalized publish parameters (qi, β, t, seed as raw f64
//!           bits), the generalized QI indices, the dataset QI pool and SA
//! "table"   the source table as a nested BTBL document (see
//!           [`crate::btbl`])
//! "form"    tag(u8) + the publication form's state:
//!             0 generalized: the partition's EC row-id lists
//!             1 perturbed:   the randomized SA column + the plan's
//!                            support/priors/caps/gammas/alphas
//!             2 anatomy:     (nothing — the histogram is derived)
//! "audit"   presence flag + the ten `PartitionAudit` fields, raw bits
//! "catalog" (optional) aggregate-catalog descriptor: catalog version,
//!           grouping tag (0 ECs / 1 blocks), block size, the block row
//!           permutation, and the covered attribute list
//! "end"     (empty payload — truncation guard)
//! ```
//!
//! The split follows what is *expensive or random* versus *cheap and
//! deterministic*: EC row lists and the perturbed column are stored because
//! recomputing them means a full BUREL run or an RNG replay, while per-EC
//! query boxes, sorted SA lists and the Anatomy histogram are rebuilt from
//! the stored state by the same deterministic code that built them at
//! publish time — which is exactly why a restored artifact answers
//! bit-identically.
//!
//! The `catalog` section follows the same philosophy: only the grouping
//! *descriptor* is stored; extents, sorted codes, posting lists and prefix
//! sums are rebuilt deterministically. Files written before the section
//! existed simply lack it, and readers rebuild the default catalog;
//! readers seeing a catalog *version* they do not derive also rebuild
//! (rebuild-on-version-skew, `DESIGN.md` §13), whereas a structurally
//! invalid descriptor in a checksum-clean file is a writer bug and fails
//! the load.

use crate::codec::{read_prologue, write_prologue, Section, SectionWriter};
use crate::error::{Result, StoreError};
use betalike_metrics::audit::PartitionAudit;
use betalike_microdata::{Table, Value};
use std::io::{BufRead, Write};

/// The BPUB magic bytes.
pub const BPUB_MAGIC: &str = "BPUB";
/// Newest BPUB version this build writes and reads.
pub const BPUB_VERSION: u32 = 1;

/// The normalized parameters a publication was produced from — the
/// storage-side mirror of `betalike-server`'s `PublishRequest` plus the
/// resolved dataset roles, kept free of server types so the store crate
/// has no dependency cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PubParams {
    /// Content-addressed handle (`pub-…`).
    pub handle: String,
    /// The canonical parameter string the handle hashes.
    pub canonical: String,
    /// Generator family (`census` / `patients` / `synthetic`).
    pub dataset_name: String,
    /// Generator row count (0 for fixed datasets such as `patients`).
    pub dataset_rows: u64,
    /// Generator seed (0 for fixed datasets).
    pub dataset_seed: u64,
    /// The registry's canonical dataset key (e.g. `census:rows=2000:seed=7`).
    pub dataset_key: String,
    /// Scheme wire name (`burel` / `sabre` / `mondrian` / `anatomy` /
    /// `perturb`).
    pub algo: String,
    /// The requested QI prefix length (normalized).
    pub qi_prefix: u32,
    /// β threshold (normalized).
    pub beta: f64,
    /// t threshold (normalized).
    pub t: f64,
    /// Algorithm seed (normalized).
    pub seed: u64,
    /// The generalized QI attribute indices (empty for perturbation /
    /// Anatomy).
    pub qi: Vec<u32>,
    /// The dataset's full candidate QI pool.
    pub qi_pool: Vec<u32>,
    /// The sensitive attribute index.
    pub sa: u32,
}

/// The stored state of one publication form (see the module docs for what
/// is stored versus rebuilt).
#[derive(Debug, Clone, PartialEq)]
pub enum FormSnapshot {
    /// A generalization-based publication: the partition's equivalence
    /// classes as row-id lists, in published order.
    Generalized {
        /// Per EC: source-table row ids.
        ecs: Vec<Vec<u32>>,
    },
    /// A perturbation publication: the randomized SA column plus the
    /// published plan's parts (the matrix is rebuilt from `alphas` by the
    /// same pure-float code that built it, so it round-trips bitwise).
    Perturbed {
        /// The randomized SA column, row-aligned with the source table.
        sa_column: Vec<Value>,
        /// SA codes with support, ascending.
        support: Vec<Value>,
        /// Published priors `p_i`.
        priors: Vec<f64>,
        /// Posterior caps `f(p_i)`.
        caps: Vec<f64>,
        /// Amplification factors `γ_i`.
        gammas: Vec<f64>,
        /// Retention probabilities `α_i`.
        alphas: Vec<f64>,
    },
    /// An Anatomy-style publication (global SA histogram — fully derived
    /// from the stored table).
    Anatomy,
}

impl FormSnapshot {
    /// The publication-form label this snapshot restores to.
    pub fn kind(&self) -> &'static str {
        match self {
            FormSnapshot::Generalized { .. } => "generalized",
            FormSnapshot::Perturbed { .. } => "perturbed",
            FormSnapshot::Anatomy => "anatomy",
        }
    }
}

/// The stored descriptor of a publication's aggregate catalog (the
/// storage-side mirror of `betalike-query`'s `CatalogSpec`, kept free of
/// query types). Everything heavy is rebuilt deterministically from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogSnapshot {
    /// The catalog derivation version the writer used. Readers deriving a
    /// different version discard the snapshot and rebuild from scratch.
    pub version: u32,
    /// Grouping tag: `0` = one group per equivalence class, `1` = blocks
    /// of a row permutation.
    pub grouping: u8,
    /// Rows per block (tag `1`; `0` otherwise).
    pub block_rows: u32,
    /// The block row permutation (tag `1`; empty otherwise).
    pub perm: Vec<u32>,
    /// The covered attribute indices, in extent order.
    pub covered: Vec<u32>,
}

/// One publication, fully decoded: parameters, source table, form state
/// and the publish-time audit.
#[derive(Debug, Clone)]
pub struct PublicationSnapshot {
    /// The normalized publish parameters and dataset roles.
    pub params: PubParams,
    /// The source table.
    pub table: Table,
    /// The stored form state.
    pub form: FormSnapshot,
    /// The privacy audit computed at publish time (`None` for forms
    /// without equivalence classes).
    pub audit: Option<PartitionAudit>,
    /// The aggregate-catalog descriptor (`None` in files written before
    /// the section existed, or when the writer served without a catalog).
    pub catalog: Option<CatalogSnapshot>,
}

fn write_params(p: &PubParams, w: &mut impl Write) -> Result<()> {
    let mut s = SectionWriter::new("params");
    s.str(&p.handle);
    s.str(&p.canonical);
    s.str(&p.dataset_name);
    s.u64(p.dataset_rows);
    s.u64(p.dataset_seed);
    s.str(&p.dataset_key);
    s.str(&p.algo);
    s.u32(p.qi_prefix);
    s.f64(p.beta);
    s.f64(p.t);
    s.u64(p.seed);
    s.u32(p.qi.len() as u32);
    for &a in &p.qi {
        s.u32(a);
    }
    s.u32(p.qi_pool.len() as u32);
    for &a in &p.qi_pool {
        s.u32(a);
    }
    s.u32(p.sa);
    s.finish(w)
}

fn read_params(r: &mut impl BufRead) -> Result<PubParams> {
    let mut s = Section::expect(r, "params")?;
    let handle = s.str()?;
    let canonical = s.str()?;
    let dataset_name = s.str()?;
    let dataset_rows = s.u64()?;
    let dataset_seed = s.u64()?;
    let dataset_key = s.str()?;
    let algo = s.str()?;
    let qi_prefix = s.u32()?;
    let beta = s.f64()?;
    let t = s.f64()?;
    let seed = s.u64()?;
    let read_vec = |s: &mut Section| -> Result<Vec<u32>> {
        let n = s.u32()? as usize;
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(s.u32()?);
        }
        Ok(v)
    };
    let qi = read_vec(&mut s)?;
    let qi_pool = read_vec(&mut s)?;
    let sa = s.u32()?;
    s.finish()?;
    Ok(PubParams {
        handle,
        canonical,
        dataset_name,
        dataset_rows,
        dataset_seed,
        dataset_key,
        algo,
        qi_prefix,
        beta,
        t,
        seed,
        qi,
        qi_pool,
        sa,
    })
}

fn write_form(form: &FormSnapshot, rows: usize, w: &mut impl Write) -> Result<()> {
    let mut s = SectionWriter::new("form");
    match form {
        FormSnapshot::Generalized { ecs } => {
            s.u8(0);
            s.u32(ecs.len() as u32);
            for ec in ecs {
                s.u32(ec.len() as u32);
                for &r in ec {
                    s.u32(r);
                }
            }
        }
        FormSnapshot::Perturbed {
            sa_column,
            support,
            priors,
            caps,
            gammas,
            alphas,
        } => {
            if sa_column.len() != rows {
                return Err(StoreError::malformed(
                    "form",
                    "perturbed SA column is not row-aligned with the table",
                ));
            }
            s.u8(1);
            s.u32(sa_column.len() as u32);
            for &v in sa_column {
                s.u32(v);
            }
            s.u32(support.len() as u32);
            for &v in support {
                s.u32(v);
            }
            for series in [priors, caps, gammas, alphas] {
                if series.len() != support.len() {
                    return Err(StoreError::malformed(
                        "form",
                        "plan series length differs from the support",
                    ));
                }
                for &x in series {
                    s.f64(x);
                }
            }
        }
        FormSnapshot::Anatomy => s.u8(2),
    }
    s.finish(w)
}

fn read_form(r: &mut impl BufRead) -> Result<FormSnapshot> {
    let mut s = Section::expect(r, "form")?;
    let form = match s.u8()? {
        0 => {
            let num_ecs = s.u32()? as usize;
            let mut ecs = Vec::with_capacity(num_ecs.min(1 << 20));
            for _ in 0..num_ecs {
                let len = s.u32()? as usize;
                let mut ec = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    ec.push(s.u32()?);
                }
                ecs.push(ec);
            }
            FormSnapshot::Generalized { ecs }
        }
        1 => {
            let rows = s.u32()? as usize;
            let mut sa_column = Vec::with_capacity(rows.min(1 << 24));
            for _ in 0..rows {
                sa_column.push(s.u32()?);
            }
            let m = s.u32()? as usize;
            let mut support = Vec::with_capacity(m.min(1 << 16));
            for _ in 0..m {
                support.push(s.u32()?);
            }
            let series = |s: &mut Section| -> Result<Vec<f64>> {
                let mut v = Vec::with_capacity(m.min(1 << 16));
                for _ in 0..m {
                    v.push(s.f64()?);
                }
                Ok(v)
            };
            let priors = series(&mut s)?;
            let caps = series(&mut s)?;
            let gammas = series(&mut s)?;
            let alphas = series(&mut s)?;
            FormSnapshot::Perturbed {
                sa_column,
                support,
                priors,
                caps,
                gammas,
                alphas,
            }
        }
        2 => FormSnapshot::Anatomy,
        tag => {
            return Err(StoreError::malformed(
                "form",
                format!("unknown form tag {tag}"),
            ))
        }
    };
    s.finish()?;
    Ok(form)
}

fn write_audit(audit: &Option<PartitionAudit>, w: &mut impl Write) -> Result<()> {
    let mut s = SectionWriter::new("audit");
    match audit {
        None => s.u8(0),
        Some(a) => {
            s.u8(1);
            s.f64(a.max_beta);
            s.f64(a.avg_beta);
            s.f64(a.max_closeness);
            s.f64(a.avg_closeness);
            s.u64(a.min_distinct_l as u64);
            s.f64(a.avg_distinct_l);
            s.f64(a.min_inv_max_freq_l);
            s.f64(a.max_delta);
            s.u64(a.min_ec_size as u64);
            s.u64(a.num_ecs as u64);
        }
    }
    s.finish(w)
}

fn read_audit(r: &mut impl BufRead) -> Result<Option<PartitionAudit>> {
    let mut s = Section::expect(r, "audit")?;
    let audit = match s.u8()? {
        0 => None,
        1 => Some(PartitionAudit {
            max_beta: s.f64()?,
            avg_beta: s.f64()?,
            max_closeness: s.f64()?,
            avg_closeness: s.f64()?,
            min_distinct_l: s.len64()?,
            avg_distinct_l: s.f64()?,
            min_inv_max_freq_l: s.f64()?,
            max_delta: s.f64()?,
            min_ec_size: s.len64()?,
            num_ecs: s.len64()?,
        }),
        tag => {
            return Err(StoreError::malformed(
                "audit",
                format!("unknown audit flag {tag}"),
            ))
        }
    };
    s.finish()?;
    Ok(audit)
}

fn write_catalog(c: &CatalogSnapshot, rows: usize, w: &mut impl Write) -> Result<()> {
    match c.grouping {
        0 => {
            if c.block_rows != 0 || !c.perm.is_empty() {
                return Err(StoreError::malformed(
                    "catalog",
                    "EC-grouped catalog carries block state",
                ));
            }
        }
        1 => {
            if c.block_rows == 0 {
                return Err(StoreError::malformed(
                    "catalog",
                    "block-grouped catalog with zero block size",
                ));
            }
            if c.perm.len() != rows {
                return Err(StoreError::malformed(
                    "catalog",
                    "catalog permutation is not row-aligned with the table",
                ));
            }
        }
        tag => {
            return Err(StoreError::malformed(
                "catalog",
                format!("unknown catalog grouping tag {tag}"),
            ))
        }
    }
    let mut s = SectionWriter::new("catalog");
    s.u32(c.version);
    s.u8(c.grouping);
    s.u32(c.block_rows);
    s.u32(c.perm.len() as u32);
    for &r in &c.perm {
        s.u32(r);
    }
    s.u32(c.covered.len() as u32);
    for &a in &c.covered {
        s.u32(a);
    }
    s.finish(w)
}

fn decode_catalog(s: &mut Section) -> Result<CatalogSnapshot> {
    let version = s.u32()?;
    let grouping = s.u8()?;
    let block_rows = s.u32()?;
    let n = s.u32()? as usize;
    let mut perm = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        perm.push(s.u32()?);
    }
    let k = s.u32()? as usize;
    let mut covered = Vec::with_capacity(k.min(1 << 16));
    for _ in 0..k {
        covered.push(s.u32()?);
    }
    Ok(CatalogSnapshot {
        version,
        grouping,
        block_rows,
        perm,
        covered,
    })
}

/// Writes a publication as a complete BPUB document.
///
/// # Errors
///
/// Propagates I/O failures; `Malformed` on internally inconsistent
/// snapshots (a writer bug, caught before a broken file reaches disk).
pub fn write_publication<W: Write>(snap: &PublicationSnapshot, w: &mut W) -> Result<()> {
    write_prologue(w, b"BPUB", BPUB_VERSION)?;
    write_params(&snap.params, w)?;
    let mut table = SectionWriter::new("table");
    table.bytes(&crate::btbl::table_to_vec(&snap.table)?);
    table.finish(w)?;
    write_form(&snap.form, snap.table.num_rows(), w)?;
    write_audit(&snap.audit, w)?;
    if let Some(c) = &snap.catalog {
        write_catalog(c, snap.table.num_rows(), w)?;
    }
    SectionWriter::new("end").finish(w)?;
    Ok(())
}

/// Reads a complete BPUB document.
///
/// # Errors
///
/// Structured [`StoreError`]s naming the failing section, as
/// [`crate::btbl::read_table`].
pub fn read_publication<R: BufRead>(r: &mut R) -> Result<PublicationSnapshot> {
    read_prologue(r, BPUB_MAGIC, BPUB_VERSION)?;
    let params = read_params(r)?;
    let mut table_section = Section::expect(r, "table")?;
    let nested = table_section.bytes(table_section.remaining())?;
    table_section.finish()?;
    let table = crate::btbl::table_from_slice(&nested)?;
    let form = read_form(r)?;
    let audit = read_audit(r)?;
    // The catalog section is optional: files written before it existed go
    // straight to "end".
    let mut next = Section::read(r)?;
    let catalog = match next.name() {
        "catalog" => {
            let c = decode_catalog(&mut next)?;
            next.finish()?;
            next = Section::read(r)?;
            Some(c)
        }
        _ => None,
    };
    if next.name() != "end" {
        return Err(StoreError::malformed(
            "end",
            format!("expected section `end`, found `{}`", next.name()),
        ));
    }
    next.finish()?;
    Ok(PublicationSnapshot {
        params,
        table,
        form,
        audit,
        catalog,
    })
}

/// [`write_publication`] into a fresh buffer.
///
/// # Errors
///
/// As [`write_publication`].
pub fn publication_to_vec(snap: &PublicationSnapshot) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    write_publication(snap, &mut out)?;
    Ok(out)
}

/// [`read_publication`] from an in-memory buffer.
///
/// # Errors
///
/// As [`read_publication`], plus `Malformed` on trailing bytes.
pub fn publication_from_slice(mut bytes: &[u8]) -> Result<PublicationSnapshot> {
    let snap = read_publication(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(StoreError::malformed(
            "end",
            format!("{} trailing bytes after the document", bytes.len()),
        ));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    pub(crate) fn sample_params() -> PubParams {
        PubParams {
            handle: "pub-0123456789abcdef".into(),
            canonical: "synthetic:rows=40:seed=5|algo=burel|qi=2|beta=4|t=0|seed=42".into(),
            dataset_name: "synthetic".into(),
            dataset_rows: 40,
            dataset_seed: 5,
            dataset_key: "synthetic:rows=40:seed=5".into(),
            algo: "burel".into(),
            qi_prefix: 2,
            beta: 4.0,
            t: 0.0,
            seed: 42,
            qi: vec![0, 1],
            qi_pool: vec![0, 1],
            sa: 2,
        }
    }

    fn sample_snapshot(form: FormSnapshot) -> PublicationSnapshot {
        let table = random_table(&SyntheticConfig {
            rows: 40,
            seed: 5,
            ..Default::default()
        });
        PublicationSnapshot {
            params: sample_params(),
            table,
            form,
            catalog: None,
            audit: Some(PartitionAudit {
                max_beta: 0.1 + 0.2, // deliberately non-representable exactly
                avg_beta: 1.5,
                max_closeness: 0.25,
                avg_closeness: 0.125,
                min_distinct_l: 3,
                avg_distinct_l: 4.5,
                min_inv_max_freq_l: 2.0,
                max_delta: 0.75,
                min_ec_size: 5,
                num_ecs: 8,
            }),
        }
    }

    #[test]
    fn generalized_roundtrips_bitwise() {
        let snap = sample_snapshot(FormSnapshot::Generalized {
            ecs: (0..8u32).map(|i| (i * 5..(i + 1) * 5).collect()).collect(),
        });
        let back = publication_from_slice(&publication_to_vec(&snap).unwrap()).unwrap();
        assert_eq!(back.params, snap.params);
        assert_eq!(back.form, snap.form);
        assert_eq!(back.audit, snap.audit);
        assert_eq!(
            back.audit.as_ref().unwrap().max_beta.to_bits(),
            snap.audit.as_ref().unwrap().max_beta.to_bits()
        );
        assert_eq!(back.table.column(2), snap.table.column(2));
    }

    #[test]
    fn perturbed_and_anatomy_roundtrip() {
        let perturbed = FormSnapshot::Perturbed {
            sa_column: vec![1; 40],
            support: vec![0, 1, 3],
            priors: vec![0.25, 0.5, 0.25],
            caps: vec![0.9, 0.95, 0.9],
            gammas: vec![3.0, 2.0, 3.0],
            alphas: vec![0.4, 0.6, 0.4],
        };
        for form in [perturbed, FormSnapshot::Anatomy] {
            let mut snap = sample_snapshot(form);
            snap.audit = None;
            let back = publication_from_slice(&publication_to_vec(&snap).unwrap()).unwrap();
            assert_eq!(back.form, snap.form);
            assert_eq!(back.audit, None);
        }
    }

    #[test]
    fn inconsistent_snapshots_fail_on_write() {
        let snap = sample_snapshot(FormSnapshot::Perturbed {
            sa_column: vec![1; 3], // not row-aligned with the 40-row table
            support: vec![0, 1],
            priors: vec![0.5, 0.5],
            caps: vec![0.9, 0.9],
            gammas: vec![2.0, 2.0],
            alphas: vec![0.5, 0.5],
        });
        assert!(matches!(
            publication_to_vec(&snap),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn catalog_section_roundtrips_and_is_optional() {
        // EC-grouped descriptor.
        let mut snap = sample_snapshot(FormSnapshot::Generalized {
            ecs: (0..8u32).map(|i| (i * 5..(i + 1) * 5).collect()).collect(),
        });
        snap.catalog = Some(CatalogSnapshot {
            version: 1,
            grouping: 0,
            block_rows: 0,
            perm: vec![],
            covered: vec![0, 1, 2],
        });
        let back = publication_from_slice(&publication_to_vec(&snap).unwrap()).unwrap();
        assert_eq!(back.catalog, snap.catalog);
        // Block-grouped descriptor with a full permutation.
        let mut blocks = sample_snapshot(FormSnapshot::Anatomy);
        blocks.audit = None;
        blocks.catalog = Some(CatalogSnapshot {
            version: 1,
            grouping: 1,
            block_rows: 16,
            perm: (0..40u32).rev().collect(),
            covered: vec![0, 1, 2],
        });
        let back = publication_from_slice(&publication_to_vec(&blocks).unwrap()).unwrap();
        assert_eq!(back.catalog, blocks.catalog);
        // Absent catalog (the pre-section layout) still round-trips.
        blocks.catalog = None;
        let back = publication_from_slice(&publication_to_vec(&blocks).unwrap()).unwrap();
        assert_eq!(back.catalog, None);
    }

    #[test]
    fn inconsistent_catalogs_fail_on_write() {
        let base = || sample_snapshot(FormSnapshot::Anatomy);
        // Row-misaligned permutation.
        let mut snap = base();
        snap.catalog = Some(CatalogSnapshot {
            version: 1,
            grouping: 1,
            block_rows: 16,
            perm: vec![0, 1, 2],
            covered: vec![0, 1, 2],
        });
        assert!(matches!(
            publication_to_vec(&snap),
            Err(StoreError::Malformed { .. })
        ));
        // Zero block size.
        let mut snap = base();
        snap.catalog = Some(CatalogSnapshot {
            version: 1,
            grouping: 1,
            block_rows: 0,
            perm: (0..40).collect(),
            covered: vec![0],
        });
        assert!(publication_to_vec(&snap).is_err());
        // EC grouping carrying block state.
        let mut snap = base();
        snap.catalog = Some(CatalogSnapshot {
            version: 1,
            grouping: 0,
            block_rows: 8,
            perm: vec![],
            covered: vec![0],
        });
        assert!(publication_to_vec(&snap).is_err());
        // Unknown grouping tag.
        let mut snap = base();
        snap.catalog = Some(CatalogSnapshot {
            version: 1,
            grouping: 9,
            block_rows: 0,
            perm: vec![],
            covered: vec![0],
        });
        assert!(publication_to_vec(&snap).is_err());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(FormSnapshot::Anatomy.kind(), "anatomy");
        assert_eq!(
            FormSnapshot::Generalized { ecs: vec![] }.kind(),
            "generalized"
        );
    }
}

//! The on-disk, content-addressed artifact store behind
//! `betalike-serve --data-dir`.
//!
//! Layout under the data directory:
//!
//! ```text
//! <data-dir>/
//!   MANIFEST              handle → canonical params → checksum (JSON)
//!   artifacts/pub-….bpub  one BPUB document per publication
//!   quarantine/           corrupt files moved aside, never deleted
//! ```
//!
//! Atomicity: artifact files and the `MANIFEST` are both written to a
//! temporary sibling, fsynced, then renamed into place — a crash leaves
//! either the old state or the new state, never a torn file. A crash
//! *between* the artifact rename and the manifest rewrite leaves an orphan
//! `.bpub`, which [`ArtifactStore::open`] adopts back into the manifest if
//! it reads cleanly (and quarantines otherwise). Manifest entries whose
//! file is missing or fails its whole-file FNV-1a checksum are quarantined
//! on open rather than served.

use crate::bpub::{publication_from_slice, publication_to_vec, PublicationSnapshot};
use crate::error::{Result, StoreError};
use betalike_microdata::hash::fnv1a64;
use betalike_microdata::json::Json;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The manifest file name.
pub const MANIFEST: &str = "MANIFEST";
/// Subdirectory holding the artifact files.
pub const ARTIFACTS_DIR: &str = "artifacts";
/// Subdirectory corrupt files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

const MANIFEST_VERSION: f64 = 1.0;

/// One manifest row: everything needed to detect a damaged artifact
/// without parsing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// Content-addressed handle (`pub-…`).
    pub handle: String,
    /// The canonical parameter string the handle hashes.
    pub canonical: String,
    /// FNV-1a over the whole `.bpub` file.
    pub checksum: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// A durable, checksummed map from publication handle to `.bpub` file.
///
/// All mutating operations rewrite the manifest atomically; concurrent
/// callers are serialized by an internal mutex (the store is shared behind
/// an `Arc` by every server worker).
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    entries: Mutex<BTreeMap<String, StoreEntry>>,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store under `root`.
    ///
    /// Scans the manifest, verifies every entry's file against its
    /// recorded checksum, quarantines damaged or missing-checksum files,
    /// adopts readable orphan `.bpub` files the manifest does not know
    /// (crash recovery), and removes stale `*.tmp` leftovers. Returns the
    /// store plus the handles that were quarantined.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and a malformed manifest (a manifest that
    /// fails to parse is a data-loss condition surfaced to the operator,
    /// not silently reset).
    pub fn open(root: impl Into<PathBuf>) -> Result<(Self, Vec<String>)> {
        let root = root.into();
        std::fs::create_dir_all(root.join(ARTIFACTS_DIR))?;
        std::fs::create_dir_all(root.join(QUARANTINE_DIR))?;

        let mut entries = read_manifest(&root)?;
        let mut quarantined = Vec::new();

        // Drop stale temporaries from interrupted writes.
        for dir in [root.join(ARTIFACTS_DIR), root.clone()] {
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "tmp") {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }

        // Verify every manifest entry's file.
        let handles: Vec<String> = entries.keys().cloned().collect();
        for handle in handles {
            let path = artifact_path(&root, &handle);
            let ok = match (std::fs::read(&path), entries.get(&handle)) {
                (Ok(bytes), Some(entry)) => fnv1a64(&bytes) == entry.checksum,
                _ => false,
            };
            if !ok {
                quarantine_file(&root, &handle);
                entries.remove(&handle);
                quarantined.push(handle);
            }
        }

        // Adopt readable orphans (artifact renamed, manifest write lost).
        for dir_entry in std::fs::read_dir(root.join(ARTIFACTS_DIR))? {
            let path = dir_entry?.path();
            if path.extension().map_or(true, |e| e != "bpub") {
                continue;
            }
            let Some(handle) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
            else {
                continue;
            };
            if entries.contains_key(&handle) {
                continue;
            }
            let adopted = std::fs::read(&path).ok().and_then(|bytes| {
                let snap = publication_from_slice(&bytes).ok()?;
                (snap.params.handle == handle).then(|| StoreEntry {
                    handle: handle.clone(),
                    canonical: snap.params.canonical,
                    checksum: fnv1a64(&bytes),
                    bytes: bytes.len() as u64,
                })
            });
            match adopted {
                Some(entry) => {
                    entries.insert(handle, entry);
                }
                None => {
                    quarantine_file(&root, &handle);
                    quarantined.push(handle);
                }
            }
        }

        let store = ArtifactStore {
            root,
            entries: Mutex::new(entries),
        };
        store.rewrite_manifest()?;
        Ok((store, quarantined))
    }

    /// The data directory this store lives under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All stored handles, sorted.
    pub fn handles(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// The manifest row for `handle`, if present.
    pub fn entry(&self, handle: &str) -> Option<StoreEntry> {
        self.lock().get(handle).cloned()
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The on-disk path of `handle`'s artifact file.
    pub fn path_of(&self, handle: &str) -> PathBuf {
        artifact_path(&self.root, handle)
    }

    /// Persists a publication: serialize, write `artifacts/<handle>.bpub`
    /// atomically (temp file + fsync + rename), then rewrite the manifest
    /// atomically.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures; `Malformed` on a handle
    /// that is not a safe file name.
    pub fn save(&self, snap: &PublicationSnapshot) -> Result<StoreEntry> {
        let handle = snap.params.handle.clone();
        validate_handle(&handle)?;
        let bytes = publication_to_vec(snap)?;
        let entry = StoreEntry {
            handle: handle.clone(),
            canonical: snap.params.canonical.clone(),
            checksum: fnv1a64(&bytes),
            bytes: bytes.len() as u64,
        };
        write_atomically(&self.path_of(&handle), &bytes)?;
        {
            let mut entries = self.lock();
            entries.insert(handle, entry.clone());
        }
        self.rewrite_manifest()?;
        Ok(entry)
    }

    /// Loads `handle`'s publication, verifying the whole-file checksum
    /// first.
    ///
    /// Returns `Ok(None)` for an unknown handle; a known handle whose file
    /// is missing, damaged or unparsable is an `Err` (callers decide
    /// whether to [`ArtifactStore::quarantine`] and recompute).
    ///
    /// # Errors
    ///
    /// `Corrupt` (section `file`) on a whole-file checksum mismatch,
    /// the BPUB reader's structured errors on parse failure, `Malformed`
    /// if the decoded document claims a different handle.
    pub fn load(&self, handle: &str) -> Result<Option<PublicationSnapshot>> {
        let Some(entry) = self.entry(handle) else {
            return Ok(None);
        };
        let bytes = std::fs::read(self.path_of(handle))?;
        let got = fnv1a64(&bytes);
        if got != entry.checksum {
            return Err(StoreError::Corrupt {
                section: "file".into(),
                expected: entry.checksum,
                got,
            });
        }
        let snap = publication_from_slice(&bytes)?;
        if snap.params.handle != handle {
            return Err(StoreError::malformed(
                "params",
                format!(
                    "file for `{handle}` contains handle `{}`",
                    snap.params.handle
                ),
            ));
        }
        Ok(Some(snap))
    }

    /// Moves `handle`'s file into `quarantine/` and drops it from the
    /// manifest. Returns whether anything was quarantined.
    ///
    /// # Errors
    ///
    /// Propagates the manifest rewrite failure.
    pub fn quarantine(&self, handle: &str) -> Result<bool> {
        let removed = self.lock().remove(handle).is_some();
        let moved = quarantine_file(&self.root, handle);
        if removed {
            self.rewrite_manifest()?;
        }
        Ok(removed || moved)
    }

    /// Deletes `handle`'s artifact and manifest row. Returns whether it
    /// existed.
    ///
    /// # Errors
    ///
    /// Propagates I/O and manifest rewrite failures.
    pub fn remove(&self, handle: &str) -> Result<bool> {
        let removed = self.lock().remove(handle).is_some();
        let path = self.path_of(handle);
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        if removed {
            self.rewrite_manifest()?;
        }
        Ok(removed)
    }

    /// Fully re-reads and re-verifies every stored artifact (whole-file
    /// checksum, per-section checksums, structural validation). Returns
    /// one `(handle, result)` row per manifest entry.
    pub fn verify(&self) -> Vec<(String, Result<StoreEntry>)> {
        self.handles()
            .into_iter()
            .map(|handle| {
                let result =
                    self.load(&handle)
                        .and_then(|snap| match (snap, self.entry(&handle)) {
                            (Some(_), Some(entry)) => Ok(entry),
                            _ => Err(StoreError::malformed(
                                "manifest",
                                "entry vanished during verification",
                            )),
                        });
                (handle, result)
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, StoreEntry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Rebuilds and atomically replaces the `MANIFEST`. The entries lock
    /// is held across the *file write*, not just the map read: the
    /// tempfile path is shared, so two concurrent rewrites would truncate
    /// each other's half-written temporary and rename interleaved bytes
    /// into place. Callers must not hold the lock when calling this.
    fn rewrite_manifest(&self) -> Result<()> {
        let entries = self.lock();
        let rows: Vec<Json> = entries
            .values()
            .map(|e| {
                Json::Obj(vec![
                    ("handle".into(), Json::Str(e.handle.clone())),
                    ("canonical".into(), Json::Str(e.canonical.clone())),
                    ("checksum".into(), Json::Str(format!("{:016x}", e.checksum))),
                    ("bytes".into(), Json::Num(e.bytes as f64)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("version".into(), Json::Num(MANIFEST_VERSION)),
            ("artifacts".into(), Json::Arr(rows)),
        ]);
        write_atomically(&self.root.join(MANIFEST), (doc.pretty() + "\n").as_bytes())
    }
}

fn artifact_path(root: &Path, handle: &str) -> PathBuf {
    root.join(ARTIFACTS_DIR).join(format!("{handle}.bpub"))
}

fn validate_handle(handle: &str) -> Result<()> {
    let safe = !handle.is_empty()
        && handle.len() <= 128
        && handle
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.');
    if !safe || handle.starts_with('.') {
        return Err(StoreError::malformed(
            "manifest",
            format!("`{handle}` is not a safe artifact handle"),
        ));
    }
    Ok(())
}

/// Best-effort move of an artifact file into quarantine; returns whether a
/// file was moved. Quarantined files are kept, never overwritten: if the
/// same handle is quarantined again (republished, then corrupted again) a
/// numeric suffix preserves the earlier copy for forensics.
fn quarantine_file(root: &Path, handle: &str) -> bool {
    let from = artifact_path(root, handle);
    if !from.exists() {
        return false;
    }
    let dir = root.join(QUARANTINE_DIR);
    let mut to = dir.join(format!("{handle}.bpub"));
    let mut n = 1u32;
    while to.exists() && n <= 1_000 {
        to = dir.join(format!("{handle}.bpub.{n}"));
        n += 1;
    }
    std::fs::rename(&from, &to).is_ok() || {
        // Cross-filesystem fallback (quarantine/ is under root, so this
        // should never trigger; keep the file out of service regardless).
        std::fs::copy(&from, &to).is_ok() && std::fs::remove_file(&from).is_ok()
    }
}

/// Temp-file-then-rename write: readers never observe a torn file.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn read_manifest(root: &Path) -> Result<BTreeMap<String, StoreEntry>> {
    let path = root.join(MANIFEST);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e.into()),
    };
    let bad = |detail: String| StoreError::Malformed {
        section: "manifest".into(),
        detail,
    };
    let doc = Json::parse(&text).map_err(|e| bad(format!("not JSON: {e}")))?;
    let version = doc
        .get("version")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad("missing `version`".into()))?;
    if version > MANIFEST_VERSION {
        return Err(StoreError::VersionSkew {
            found: version as u32,
            supported: MANIFEST_VERSION as u32,
        });
    }
    let mut entries = BTreeMap::new();
    for (i, row) in doc
        .get("artifacts")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing `artifacts` array".into()))?
        .iter()
        .enumerate()
    {
        let text_field = |key: &str| {
            row.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("artifacts[{i}]: missing string `{key}`")))
        };
        let handle = text_field("handle")?;
        validate_handle(&handle)?;
        let checksum = u64::from_str_radix(&text_field("checksum")?, 16)
            .map_err(|_| bad(format!("artifacts[{i}]: checksum is not hex")))?;
        let bytes = row
            .get("bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("artifacts[{i}]: missing `bytes`")))?;
        entries.insert(
            handle.clone(),
            StoreEntry {
                handle,
                canonical: text_field("canonical")?,
                checksum,
                bytes,
            },
        );
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpub::{FormSnapshot, PubParams};
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("betalike-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn snapshot(handle: &str) -> PublicationSnapshot {
        let table = random_table(&SyntheticConfig {
            rows: 30,
            seed: 9,
            ..Default::default()
        });
        PublicationSnapshot {
            params: PubParams {
                handle: handle.into(),
                canonical: format!("canonical-of-{handle}"),
                dataset_name: "synthetic".into(),
                dataset_rows: 30,
                dataset_seed: 9,
                dataset_key: "synthetic:rows=30:seed=9".into(),
                algo: "anatomy".into(),
                qi_prefix: 0,
                beta: 0.0,
                t: 0.0,
                seed: 0,
                qi: vec![],
                qi_pool: vec![0, 1],
                sa: 2,
            },
            table,
            form: FormSnapshot::Anatomy,
            audit: None,
        }
    }

    #[test]
    fn save_load_roundtrip_and_manifest() {
        let root = temp_root("roundtrip");
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty() && store.is_empty());
        let entry = store.save(&snapshot("pub-aaaa")).unwrap();
        assert_eq!(entry.handle, "pub-aaaa");
        assert!(entry.bytes > 0);
        let snap = store.load("pub-aaaa").unwrap().unwrap();
        assert_eq!(snap.params.handle, "pub-aaaa");
        assert_eq!(store.load("pub-missing").unwrap().map(|_| ()), None);

        // Reopen: the manifest round-trips.
        drop(store);
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty());
        assert_eq!(store.handles(), vec!["pub-aaaa".to_string()]);
        assert_eq!(store.entry("pub-aaaa").unwrap(), entry);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_file_is_quarantined_on_open() {
        let root = temp_root("quarantine");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-bbbb")).unwrap();
        let path = store.path_of("pub-bbbb");
        drop(store);
        // Flip one byte mid-file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert_eq!(quarantined, vec!["pub-bbbb".to_string()]);
        assert!(store.is_empty());
        assert!(!path.exists(), "corrupt file must leave artifacts/");
        assert!(root.join(QUARANTINE_DIR).join("pub-bbbb.bpub").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_after_open_fails_load_then_quarantines() {
        let root = temp_root("late-corruption");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-cccc")).unwrap();
        let mut bytes = std::fs::read(store.path_of("pub-cccc")).unwrap();
        let last = bytes.len() - 20;
        bytes[last] ^= 0x55;
        std::fs::write(store.path_of("pub-cccc"), &bytes).unwrap();
        assert!(matches!(
            store.load("pub-cccc"),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(store.quarantine("pub-cccc").unwrap());
        assert_eq!(store.load("pub-cccc").unwrap().map(|_| ()), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn orphan_files_are_adopted() {
        let root = temp_root("orphan");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-dddd")).unwrap();
        // Simulate a crash after the artifact rename but before the
        // manifest write: delete the manifest.
        drop(store);
        std::fs::remove_file(root.join(MANIFEST)).unwrap();
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty());
        assert_eq!(store.handles(), vec!["pub-dddd".to_string()]);
        assert!(store.load("pub-dddd").unwrap().is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn remove_deletes_file_and_row() {
        let root = temp_root("remove");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-eeee")).unwrap();
        store.save(&snapshot("pub-ffff")).unwrap();
        assert!(store.remove("pub-eeee").unwrap());
        assert!(!store.remove("pub-eeee").unwrap());
        assert_eq!(store.handles(), vec!["pub-ffff".to_string()]);
        assert!(!store.path_of("pub-eeee").exists());
        drop(store);
        let (store, _) = ArtifactStore::open(&root).unwrap();
        assert_eq!(store.handles(), vec!["pub-ffff".to_string()]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn verify_reports_per_handle() {
        let root = temp_root("verify");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-good")).unwrap();
        store.save(&snapshot("pub-bad0")).unwrap();
        let mut bytes = std::fs::read(store.path_of("pub-bad0")).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(store.path_of("pub-bad0"), &bytes).unwrap();
        let report = store.verify();
        assert_eq!(report.len(), 2);
        let by_handle: BTreeMap<_, _> = report.into_iter().map(|(h, r)| (h, r.is_ok())).collect();
        assert!(by_handle["pub-good"]);
        assert!(!by_handle["pub-bad0"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_saves_keep_the_manifest_consistent() {
        let root = temp_root("concurrent");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        std::thread::scope(|s| {
            for i in 0..8 {
                let store = &store;
                s.spawn(move || {
                    store.save(&snapshot(&format!("pub-thread{i}"))).unwrap();
                });
            }
        });
        assert_eq!(store.len(), 8);
        // The manifest on disk must parse and list all eight — a torn
        // concurrent rewrite would fail this reopen.
        drop(store);
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty());
        assert_eq!(store.len(), 8);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn requarantine_preserves_earlier_copies() {
        let root = temp_root("requarantine");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-again")).unwrap();
        assert!(store.quarantine("pub-again").unwrap());
        store.save(&snapshot("pub-again")).unwrap();
        assert!(store.quarantine("pub-again").unwrap());
        let q = root.join(QUARANTINE_DIR);
        assert!(q.join("pub-again.bpub").exists());
        assert!(
            q.join("pub-again.bpub.1").exists(),
            "second quarantine must not overwrite the first copy"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unsafe_handles_are_rejected() {
        for bad in ["", "../escape", "a/b", ".hidden", "x y"] {
            assert!(validate_handle(bad).is_err(), "{bad:?} accepted");
        }
        assert!(validate_handle("pub-0123abcd").is_ok());
    }
}

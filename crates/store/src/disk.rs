//! The on-disk, content-addressed artifact store behind
//! `betalike-serve --data-dir`.
//!
//! Layout under the data directory:
//!
//! ```text
//! <data-dir>/
//!   MANIFEST              handle → canonical params → checksum (JSON)
//!   artifacts/pub-….bpub  one BPUB document per publication
//!   quarantine/           corrupt files moved aside, never deleted
//! ```
//!
//! Atomicity: artifact files and the `MANIFEST` are both written to a
//! temporary sibling, fsynced, renamed into place, and the containing
//! directory fsynced — a crash leaves either the old state or the new
//! state, never a torn file. A crash *between* the artifact rename and the
//! manifest rewrite leaves an orphan `.bpub`, which [`ArtifactStore::open`]
//! adopts back into the manifest if it reads cleanly (and quarantines
//! otherwise). Manifest entries whose file is missing or fails its
//! whole-file FNV-1a checksum are quarantined on open rather than served;
//! a *transient* read error (anything other than `NotFound`, after an
//! `Interrupted` retry) fails the open instead — quarantining on a
//! transient error could shadow a healthy copy.
//!
//! Every syscall goes through an injectable [`Vfs`] (see
//! `betalike-faults`), tagged with one of the [`site`] labels below; the
//! crash-point torture suite in `crates/faults/tests/torture.rs` kills the
//! store at every site and asserts these recovery invariants hold. A new
//! syscall site added without a [`site`] constant (or bypassing the Vfs —
//! lint rule F1) is a test failure.

use crate::bpub::{publication_from_slice, publication_to_vec, PublicationSnapshot};
use crate::error::{Result, StoreError};
use crate::obs::StoreObs;
use betalike_faults::{RealVfs, Vfs};
use betalike_microdata::hash::fnv1a64;
use betalike_microdata::json::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The manifest file name.
pub const MANIFEST: &str = "MANIFEST";
/// Subdirectory holding the artifact files.
pub const ARTIFACTS_DIR: &str = "artifacts";
/// Subdirectory corrupt files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Consecutive [`ArtifactStore::save`] failures after which
/// [`ArtifactStore::degraded`] reports true and the server stops accepting
/// publishes (counts/audits keep serving).
pub const DEGRADED_AFTER: u32 = 3;

const MANIFEST_VERSION: f64 = 1.0;

/// Stable labels for every [`Vfs`] call site in this module. The torture
/// suite asserts it observed exactly [`site::VFS_SITES`] — adding a
/// syscall here without extending the roster fails that suite, the same
/// way a new attack must join `AttackKind::ALL`.
pub mod site {
    /// `create_dir_all(artifacts/)` during open.
    pub const OPEN_MKDIR_ARTIFACTS: &str = "open.mkdir.artifacts";
    /// `create_dir_all(quarantine/)` during open.
    pub const OPEN_MKDIR_QUARANTINE: &str = "open.mkdir.quarantine";
    /// Manifest read during open.
    pub const OPEN_READ_MANIFEST: &str = "open.read.manifest";
    /// Directory scans for stale `*.tmp` leftovers during open.
    pub const OPEN_SCAN_TMP: &str = "open.scan.tmp";
    /// Removal of a stale `*.tmp` leftover during open.
    pub const OPEN_REMOVE_TMP: &str = "open.remove.tmp";
    /// Checksum re-read of a manifest entry's file during open.
    pub const OPEN_READ_ARTIFACT: &str = "open.read.artifact";
    /// `artifacts/` scan for orphan `.bpub` files during open.
    pub const OPEN_SCAN_ORPHANS: &str = "open.scan.orphans";
    /// Read of an orphan `.bpub` candidate during open.
    pub const OPEN_READ_ORPHAN: &str = "open.read.orphan";
    /// Tempfile write of an artifact during save.
    pub const SAVE_WRITE_TMP: &str = "save.write.tmp";
    /// Tempfile fsync of an artifact during save.
    pub const SAVE_FSYNC_TMP: &str = "save.fsync.tmp";
    /// Rename of an artifact tempfile into place.
    pub const SAVE_RENAME: &str = "save.rename";
    /// Directory fsync making the artifact rename durable.
    pub const SAVE_FSYNC_DIR: &str = "save.fsync.dir";
    /// Tempfile write of the manifest.
    pub const MANIFEST_WRITE_TMP: &str = "manifest.write.tmp";
    /// Tempfile fsync of the manifest.
    pub const MANIFEST_FSYNC_TMP: &str = "manifest.fsync.tmp";
    /// Rename of the manifest tempfile into place.
    pub const MANIFEST_RENAME: &str = "manifest.rename";
    /// Directory fsync making the manifest rename durable.
    pub const MANIFEST_FSYNC_DIR: &str = "manifest.fsync.dir";
    /// Artifact read during [`super::ArtifactStore::load`].
    pub const LOAD_READ_ARTIFACT: &str = "load.read.artifact";
    /// Artifact unlink during [`super::ArtifactStore::remove`].
    pub const REMOVE_ARTIFACT: &str = "remove.artifact";
    /// Move of a damaged file into `quarantine/`.
    pub const QUARANTINE_RENAME: &str = "quarantine.rename";
    /// Cross-filesystem quarantine fallback: copy into `quarantine/`.
    pub const QUARANTINE_FALLBACK_COPY: &str = "quarantine.fallback.copy";
    /// Cross-filesystem quarantine fallback: unlink the original.
    pub const QUARANTINE_FALLBACK_REMOVE: &str = "quarantine.fallback.remove";
    /// Probe-file write during [`super::ArtifactStore::probe`].
    pub const PROBE_WRITE: &str = "probe.write";
    /// Probe-file unlink during [`super::ArtifactStore::probe`].
    pub const PROBE_REMOVE: &str = "probe.remove";

    /// Every site label above — the coverage roster the torture suite
    /// checks both directions (no unobserved site, no unlisted site).
    pub const VFS_SITES: &[&str] = &[
        OPEN_MKDIR_ARTIFACTS,
        OPEN_MKDIR_QUARANTINE,
        OPEN_READ_MANIFEST,
        OPEN_SCAN_TMP,
        OPEN_REMOVE_TMP,
        OPEN_READ_ARTIFACT,
        OPEN_SCAN_ORPHANS,
        OPEN_READ_ORPHAN,
        SAVE_WRITE_TMP,
        SAVE_FSYNC_TMP,
        SAVE_RENAME,
        SAVE_FSYNC_DIR,
        MANIFEST_WRITE_TMP,
        MANIFEST_FSYNC_TMP,
        MANIFEST_RENAME,
        MANIFEST_FSYNC_DIR,
        LOAD_READ_ARTIFACT,
        REMOVE_ARTIFACT,
        QUARANTINE_RENAME,
        QUARANTINE_FALLBACK_COPY,
        QUARANTINE_FALLBACK_REMOVE,
        PROBE_WRITE,
        PROBE_REMOVE,
    ];
}

/// One manifest row: everything needed to detect a damaged artifact
/// without parsing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// Content-addressed handle (`pub-…`).
    pub handle: String,
    /// The canonical parameter string the handle hashes.
    pub canonical: String,
    /// FNV-1a over the whole `.bpub` file.
    pub checksum: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// A durable, checksummed map from publication handle to `.bpub` file.
///
/// All mutating operations rewrite the manifest atomically; concurrent
/// callers are serialized by an internal mutex (the store is shared behind
/// an `Arc` by every server worker).
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
    entries: Mutex<BTreeMap<String, StoreEntry>>,
    write_failures: AtomicU32,
    obs: OnceLock<StoreObs>,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store under `root`, on the real
    /// filesystem. Equivalent to [`ArtifactStore::open_with`] and
    /// [`RealVfs`].
    ///
    /// # Errors
    ///
    /// See [`ArtifactStore::open_with`].
    pub fn open(root: impl Into<PathBuf>) -> Result<(Self, Vec<String>)> {
        Self::open_with(root, Arc::new(RealVfs))
    }

    /// Opens (creating if needed) the store under `root`, routing every
    /// syscall through `vfs`.
    ///
    /// Scans the manifest, verifies every entry's file against its
    /// recorded checksum, quarantines damaged files (dropping rows whose
    /// file is simply gone), adopts readable orphan `.bpub` files the
    /// manifest does not know (crash recovery), and removes stale `*.tmp`
    /// leftovers. Returns the store plus the handles that were quarantined
    /// or dropped.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures — including *transient* read errors while
    /// verifying an entry (quarantining on those could shadow a healthy
    /// copy; the caller retries the open instead) — and a malformed
    /// manifest (a manifest that fails to parse is a data-loss condition
    /// surfaced to the operator, not silently reset).
    pub fn open_with(root: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> Result<(Self, Vec<String>)> {
        let root = root.into();
        vfs.create_dir_all(site::OPEN_MKDIR_ARTIFACTS, &root.join(ARTIFACTS_DIR))?;
        vfs.create_dir_all(site::OPEN_MKDIR_QUARANTINE, &root.join(QUARANTINE_DIR))?;

        let mut entries = read_manifest(vfs.as_ref(), &root)?;
        let mut quarantined = Vec::new();

        // Drop stale temporaries from interrupted writes.
        for dir in [root.join(ARTIFACTS_DIR), root.clone()] {
            for path in vfs.read_dir(site::OPEN_SCAN_TMP, &dir)? {
                if path.extension().is_some_and(|e| e == "tmp") {
                    let _ = vfs.remove_file(site::OPEN_REMOVE_TMP, &path);
                }
            }
        }

        // Verify every manifest entry's file, classifying read errors:
        // only an actual checksum mismatch quarantines. A missing file
        // just drops the stale row; any other error (after retrying
        // `Interrupted`) aborts the open — it says nothing about the
        // bytes, and moving the file aside on it could bury the only
        // healthy copy.
        let handles: Vec<String> = entries.keys().cloned().collect();
        for handle in handles {
            let path = artifact_path(&root, &handle);
            match read_retrying_interrupts(vfs.as_ref(), site::OPEN_READ_ARTIFACT, &path) {
                Ok(bytes) => {
                    let ok = entries
                        .get(&handle)
                        .is_some_and(|entry| fnv1a64(&bytes) == entry.checksum);
                    if !ok {
                        quarantine_file(vfs.as_ref(), &root, &handle);
                        entries.remove(&handle);
                        quarantined.push(handle);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    entries.remove(&handle);
                    quarantined.push(handle);
                }
                Err(e) => return Err(e.into()),
            }
        }

        // Adopt readable orphans (artifact renamed, manifest write lost).
        for path in vfs.read_dir(site::OPEN_SCAN_ORPHANS, &root.join(ARTIFACTS_DIR))? {
            if path.extension().map_or(true, |e| e != "bpub") {
                continue;
            }
            let Some(handle) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
            else {
                continue;
            };
            if entries.contains_key(&handle) {
                continue;
            }
            let bytes = match read_retrying_interrupts(vfs.as_ref(), site::OPEN_READ_ORPHAN, &path)
            {
                Ok(bytes) => bytes,
                // Raced away (e.g. by a concurrent opener): nothing to adopt.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                // Same transient-error rule as above: don't judge a file
                // we could not read.
                Err(e) => return Err(e.into()),
            };
            let adopted = publication_from_slice(&bytes).ok().and_then(|snap| {
                (snap.params.handle == handle).then(|| StoreEntry {
                    handle: handle.clone(),
                    canonical: snap.params.canonical,
                    checksum: fnv1a64(&bytes),
                    bytes: bytes.len() as u64,
                })
            });
            match adopted {
                Some(entry) => {
                    entries.insert(handle, entry);
                }
                None => {
                    quarantine_file(vfs.as_ref(), &root, &handle);
                    quarantined.push(handle);
                }
            }
        }

        let store = ArtifactStore {
            root,
            vfs,
            entries: Mutex::new(entries),
            write_failures: AtomicU32::new(0),
            obs: OnceLock::new(),
        };
        store.rewrite_manifest()?;
        Ok((store, quarantined))
    }

    /// The data directory this store lives under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Attaches observability handles (first caller wins; later calls are
    /// ignored). Saves, loads and fsyncs are timed from here on, and the
    /// `store_*` gauges start mirroring manifest size and failure state —
    /// seeded immediately so a freshly restarted server reports its
    /// restored artifact count before any traffic.
    pub fn attach_obs(&self, obs: StoreObs) {
        let _ = self.obs.set(obs);
        if let Some(o) = self.obs.get() {
            o.stored.set(self.len() as i64);
            o.write_failures.set(i64::from(self.write_failures()));
            o.degraded.set(i64::from(self.degraded()));
        }
    }

    fn obs(&self) -> Option<&StoreObs> {
        self.obs.get()
    }

    /// Pushes failure-state gauges after any operation that can move
    /// them.
    fn sync_obs_gauges(&self) {
        if let Some(o) = self.obs() {
            o.stored.set(self.len() as i64);
            o.write_failures.set(i64::from(self.write_failures()));
            o.degraded.set(i64::from(self.degraded()));
        }
    }

    /// All stored handles, sorted.
    pub fn handles(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// The manifest row for `handle`, if present.
    pub fn entry(&self, handle: &str) -> Option<StoreEntry> {
        self.lock().get(handle).cloned()
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The on-disk path of `handle`'s artifact file.
    pub fn path_of(&self, handle: &str) -> PathBuf {
        artifact_path(&self.root, handle)
    }

    /// Consecutive [`ArtifactStore::save`] failures since the last
    /// success.
    pub fn write_failures(&self) -> u32 {
        self.write_failures.load(Ordering::SeqCst)
    }

    /// Whether the store has seen [`DEGRADED_AFTER`] or more consecutive
    /// save failures — the server's cue to enter read-only degraded mode
    /// (publishes shed with a retryable error, reads keep serving).
    pub fn degraded(&self) -> bool {
        self.write_failures() >= DEGRADED_AFTER
    }

    /// Checks whether the disk can take writes again by writing and
    /// unlinking a small probe file in `artifacts/`. A successful probe
    /// resets the failure counter (clearing [`ArtifactStore::degraded`]);
    /// a failed one leaves it untouched — probing is how a degraded
    /// server discovers recovery without risking a real artifact. The
    /// `.tmp` suffix means a probe stranded by a crash is swept by the
    /// next open's stale-tempfile cleanup.
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure of the probe write or unlink.
    pub fn probe(&self) -> Result<()> {
        let path = self.root.join(ARTIFACTS_DIR).join(".probe.tmp");
        self.vfs
            .write(site::PROBE_WRITE, &path, b"betalike probe")?;
        self.vfs.remove_file(site::PROBE_REMOVE, &path)?;
        self.write_failures.store(0, Ordering::SeqCst);
        self.sync_obs_gauges();
        Ok(())
    }

    /// Persists a publication: serialize, write `artifacts/<handle>.bpub`
    /// atomically (temp file + fsync + rename + directory fsync), then
    /// rewrite the manifest atomically. Tracks consecutive failures for
    /// [`ArtifactStore::degraded`].
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures; `Malformed` on a handle
    /// that is not a safe file name.
    pub fn save(&self, snap: &PublicationSnapshot) -> Result<StoreEntry> {
        let start = self.obs().and_then(StoreObs::start);
        let result = self.save_inner(snap);
        match &result {
            Ok(_) => self.write_failures.store(0, Ordering::SeqCst),
            // Saturate: a disk that stays broken for 2^32 publishes must
            // not wrap back to "healthy".
            Err(_) => {
                let _ = self
                    .write_failures
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                        Some(n.saturating_add(1))
                    });
            }
        }
        if let Some(o) = self.obs() {
            o.record_since(&o.save_ns, start);
        }
        self.sync_obs_gauges();
        result
    }

    fn save_inner(&self, snap: &PublicationSnapshot) -> Result<StoreEntry> {
        let handle = snap.params.handle.clone();
        validate_handle(&handle)?;
        let bytes = publication_to_vec(snap)?;
        let entry = StoreEntry {
            handle: handle.clone(),
            canonical: snap.params.canonical.clone(),
            checksum: fnv1a64(&bytes),
            bytes: bytes.len() as u64,
        };
        write_atomically(
            self.vfs.as_ref(),
            self.obs(),
            &AtomicWriteSites::ARTIFACT,
            &self.path_of(&handle),
            &bytes,
        )?;
        {
            let mut entries = self.lock();
            entries.insert(handle, entry.clone());
        }
        self.rewrite_manifest()?;
        Ok(entry)
    }

    /// Loads `handle`'s publication, verifying the whole-file checksum
    /// first.
    ///
    /// Returns `Ok(None)` for an unknown handle; a known handle whose file
    /// is missing, damaged or unparsable is an `Err` (callers decide
    /// whether to [`ArtifactStore::quarantine`] and recompute).
    ///
    /// # Errors
    ///
    /// `Corrupt` (section `file`) on a whole-file checksum mismatch,
    /// the BPUB reader's structured errors on parse failure, `Malformed`
    /// if the decoded document claims a different handle.
    pub fn load(&self, handle: &str) -> Result<Option<PublicationSnapshot>> {
        let start = self.obs().and_then(StoreObs::start);
        let result = self.load_inner(handle);
        if let Some(o) = self.obs() {
            o.record_since(&o.load_ns, start);
        }
        result
    }

    fn load_inner(&self, handle: &str) -> Result<Option<PublicationSnapshot>> {
        let Some(entry) = self.entry(handle) else {
            return Ok(None);
        };
        let bytes = self
            .vfs
            .read(site::LOAD_READ_ARTIFACT, &self.path_of(handle))?;
        let got = fnv1a64(&bytes);
        if got != entry.checksum {
            return Err(StoreError::Corrupt {
                section: "file".into(),
                expected: entry.checksum,
                got,
            });
        }
        let snap = publication_from_slice(&bytes)?;
        if snap.params.handle != handle {
            return Err(StoreError::malformed(
                "params",
                format!(
                    "file for `{handle}` contains handle `{}`",
                    snap.params.handle
                ),
            ));
        }
        Ok(Some(snap))
    }

    /// Moves `handle`'s file into `quarantine/` and drops it from the
    /// manifest. Returns whether anything was quarantined.
    ///
    /// # Errors
    ///
    /// Propagates the manifest rewrite failure.
    pub fn quarantine(&self, handle: &str) -> Result<bool> {
        let removed = self.lock().remove(handle).is_some();
        let moved = quarantine_file(self.vfs.as_ref(), &self.root, handle);
        if removed {
            self.rewrite_manifest()?;
        }
        if removed || moved {
            if let Some(o) = self.obs() {
                o.quarantines.inc();
            }
            self.sync_obs_gauges();
        }
        Ok(removed || moved)
    }

    /// Deletes `handle`'s artifact and manifest row. Returns whether it
    /// existed.
    ///
    /// # Errors
    ///
    /// Propagates I/O and manifest rewrite failures.
    pub fn remove(&self, handle: &str) -> Result<bool> {
        let removed = self.lock().remove(handle).is_some();
        let path = self.path_of(handle);
        if self.vfs.exists(&path) {
            self.vfs.remove_file(site::REMOVE_ARTIFACT, &path)?;
        }
        if removed {
            self.rewrite_manifest()?;
            self.sync_obs_gauges();
        }
        Ok(removed)
    }

    /// Fully re-reads and re-verifies every stored artifact (whole-file
    /// checksum, per-section checksums, structural validation). Returns
    /// one `(handle, result)` row per manifest entry.
    pub fn verify(&self) -> Vec<(String, Result<StoreEntry>)> {
        self.handles()
            .into_iter()
            .map(|handle| {
                let result =
                    self.load(&handle)
                        .and_then(|snap| match (snap, self.entry(&handle)) {
                            (Some(_), Some(entry)) => Ok(entry),
                            _ => Err(StoreError::malformed(
                                "manifest",
                                "entry vanished during verification",
                            )),
                        });
                (handle, result)
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, StoreEntry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Rebuilds and atomically replaces the `MANIFEST`. The entries lock
    /// is held across the *file write*, not just the map read: the
    /// tempfile path is shared, so two concurrent rewrites would truncate
    /// each other's half-written temporary and rename interleaved bytes
    /// into place. Callers must not hold the lock when calling this.
    fn rewrite_manifest(&self) -> Result<()> {
        let entries = self.lock();
        let rows: Vec<Json> = entries
            .values()
            .map(|e| {
                Json::Obj(vec![
                    ("handle".into(), Json::Str(e.handle.clone())),
                    ("canonical".into(), Json::Str(e.canonical.clone())),
                    ("checksum".into(), Json::Str(format!("{:016x}", e.checksum))),
                    ("bytes".into(), Json::Num(e.bytes as f64)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("version".into(), Json::Num(MANIFEST_VERSION)),
            ("artifacts".into(), Json::Arr(rows)),
        ]);
        write_atomically(
            self.vfs.as_ref(),
            self.obs(),
            &AtomicWriteSites::MANIFEST,
            &self.root.join(MANIFEST),
            (doc.pretty() + "\n").as_bytes(),
        )
    }
}

fn artifact_path(root: &Path, handle: &str) -> PathBuf {
    root.join(ARTIFACTS_DIR).join(format!("{handle}.bpub"))
}

fn validate_handle(handle: &str) -> Result<()> {
    let safe = !handle.is_empty()
        && handle.len() <= 128
        && handle
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.');
    if !safe || handle.starts_with('.') {
        return Err(StoreError::malformed(
            "manifest",
            format!("`{handle}` is not a safe artifact handle"),
        ));
    }
    Ok(())
}

/// Retries `Interrupted` reads (a signal landing mid-`read(2)`) a few
/// times before giving up; every other error is returned to the caller
/// for classification.
fn read_retrying_interrupts(vfs: &dyn Vfs, site: &'static str, path: &Path) -> io::Result<Vec<u8>> {
    let mut last = None;
    for _ in 0..3 {
        match vfs.read(site, path) {
            Ok(bytes) => return Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| io::Error::from(io::ErrorKind::Interrupted)))
}

/// Best-effort move of an artifact file into quarantine; returns whether a
/// file was moved. Quarantined files are kept, never overwritten: if the
/// same handle is quarantined again (republished, then corrupted again) a
/// numeric suffix preserves the earlier copy for forensics.
fn quarantine_file(vfs: &dyn Vfs, root: &Path, handle: &str) -> bool {
    let from = artifact_path(root, handle);
    if !vfs.exists(&from) {
        return false;
    }
    let dir = root.join(QUARANTINE_DIR);
    let mut to = dir.join(format!("{handle}.bpub"));
    let mut n = 1u32;
    while vfs.exists(&to) && n <= 1_000 {
        to = dir.join(format!("{handle}.bpub.{n}"));
        n += 1;
    }
    vfs.rename(site::QUARANTINE_RENAME, &from, &to).is_ok() || {
        // Cross-filesystem fallback (quarantine/ is under root, so this
        // should never trigger; keep the file out of service regardless).
        vfs.copy(site::QUARANTINE_FALLBACK_COPY, &from, &to).is_ok()
            && vfs
                .remove_file(site::QUARANTINE_FALLBACK_REMOVE, &from)
                .is_ok()
    }
}

/// The four site labels of one atomic write, so the artifact and manifest
/// sequences stay distinguishable in a failure schedule.
struct AtomicWriteSites {
    write: &'static str,
    fsync_tmp: &'static str,
    rename: &'static str,
    fsync_dir: &'static str,
}

impl AtomicWriteSites {
    const ARTIFACT: AtomicWriteSites = AtomicWriteSites {
        write: site::SAVE_WRITE_TMP,
        fsync_tmp: site::SAVE_FSYNC_TMP,
        rename: site::SAVE_RENAME,
        fsync_dir: site::SAVE_FSYNC_DIR,
    };
    const MANIFEST: AtomicWriteSites = AtomicWriteSites {
        write: site::MANIFEST_WRITE_TMP,
        fsync_tmp: site::MANIFEST_FSYNC_TMP,
        rename: site::MANIFEST_RENAME,
        fsync_dir: site::MANIFEST_FSYNC_DIR,
    };
}

/// Temp-file-then-rename write with a trailing directory fsync: readers
/// never observe a torn file, and the rename itself survives a crash.
/// Each fsync is individually timed into `obs` when handles are attached
/// (no new [`Vfs`] sites — the timing wraps the existing calls).
fn write_atomically(
    vfs: &dyn Vfs,
    obs: Option<&StoreObs>,
    sites: &AtomicWriteSites,
    path: &Path,
    bytes: &[u8],
) -> Result<()> {
    let timed_fsync = |site: &'static str, target: &Path| -> io::Result<()> {
        let start = obs.and_then(StoreObs::start);
        let result = vfs.fsync(site, target);
        if let Some(o) = obs {
            o.record_since(&o.fsync_ns, start);
        }
        result
    };
    let tmp = path.with_extension("tmp");
    vfs.write(sites.write, &tmp, bytes)?;
    timed_fsync(sites.fsync_tmp, &tmp)?;
    vfs.rename(sites.rename, &tmp, path)?;
    if let Some(parent) = path.parent() {
        timed_fsync(sites.fsync_dir, parent)?;
    }
    Ok(())
}

fn read_manifest(vfs: &dyn Vfs, root: &Path) -> Result<BTreeMap<String, StoreEntry>> {
    let path = root.join(MANIFEST);
    let text = match vfs.read_to_string(site::OPEN_READ_MANIFEST, &path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e.into()),
    };
    let bad = |detail: String| StoreError::Malformed {
        section: "manifest".into(),
        detail,
    };
    let doc = Json::parse(&text).map_err(|e| bad(format!("not JSON: {e}")))?;
    let version = doc
        .get("version")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad("missing `version`".into()))?;
    if version > MANIFEST_VERSION {
        return Err(StoreError::VersionSkew {
            found: version as u32,
            supported: MANIFEST_VERSION as u32,
        });
    }
    let mut entries = BTreeMap::new();
    for (i, row) in doc
        .get("artifacts")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing `artifacts` array".into()))?
        .iter()
        .enumerate()
    {
        let text_field = |key: &str| {
            row.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("artifacts[{i}]: missing string `{key}`")))
        };
        let handle = text_field("handle")?;
        validate_handle(&handle)?;
        let checksum = u64::from_str_radix(&text_field("checksum")?, 16)
            .map_err(|_| bad(format!("artifacts[{i}]: checksum is not hex")))?;
        let bytes = row
            .get("bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("artifacts[{i}]: missing `bytes`")))?;
        entries.insert(
            handle.clone(),
            StoreEntry {
                handle,
                canonical: text_field("canonical")?,
                checksum,
                bytes,
            },
        );
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpub::{FormSnapshot, PubParams};
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("betalike-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn snapshot(handle: &str) -> PublicationSnapshot {
        let table = random_table(&SyntheticConfig {
            rows: 30,
            seed: 9,
            ..Default::default()
        });
        PublicationSnapshot {
            params: PubParams {
                handle: handle.into(),
                canonical: format!("canonical-of-{handle}"),
                dataset_name: "synthetic".into(),
                dataset_rows: 30,
                dataset_seed: 9,
                dataset_key: "synthetic:rows=30:seed=9".into(),
                algo: "anatomy".into(),
                qi_prefix: 0,
                beta: 0.0,
                t: 0.0,
                seed: 0,
                qi: vec![],
                qi_pool: vec![0, 1],
                sa: 2,
            },
            table,
            form: FormSnapshot::Anatomy,
            audit: None,
            catalog: None,
        }
    }

    #[test]
    fn save_load_roundtrip_and_manifest() {
        let root = temp_root("roundtrip");
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty() && store.is_empty());
        let entry = store.save(&snapshot("pub-aaaa")).unwrap();
        assert_eq!(entry.handle, "pub-aaaa");
        assert!(entry.bytes > 0);
        let snap = store.load("pub-aaaa").unwrap().unwrap();
        assert_eq!(snap.params.handle, "pub-aaaa");
        assert_eq!(store.load("pub-missing").unwrap().map(|_| ()), None);

        // Reopen: the manifest round-trips.
        drop(store);
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty());
        assert_eq!(store.handles(), vec!["pub-aaaa".to_string()]);
        assert_eq!(store.entry("pub-aaaa").unwrap(), entry);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_file_is_quarantined_on_open() {
        let root = temp_root("quarantine");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-bbbb")).unwrap();
        let path = store.path_of("pub-bbbb");
        drop(store);
        // Flip one byte mid-file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert_eq!(quarantined, vec!["pub-bbbb".to_string()]);
        assert!(store.is_empty());
        assert!(!path.exists(), "corrupt file must leave artifacts/");
        assert!(root.join(QUARANTINE_DIR).join("pub-bbbb.bpub").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_after_open_fails_load_then_quarantines() {
        let root = temp_root("late-corruption");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-cccc")).unwrap();
        let mut bytes = std::fs::read(store.path_of("pub-cccc")).unwrap();
        let last = bytes.len() - 20;
        bytes[last] ^= 0x55;
        std::fs::write(store.path_of("pub-cccc"), &bytes).unwrap();
        assert!(matches!(
            store.load("pub-cccc"),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(store.quarantine("pub-cccc").unwrap());
        assert_eq!(store.load("pub-cccc").unwrap().map(|_| ()), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn orphan_files_are_adopted() {
        let root = temp_root("orphan");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-dddd")).unwrap();
        // Simulate a crash after the artifact rename but before the
        // manifest write: delete the manifest.
        drop(store);
        std::fs::remove_file(root.join(MANIFEST)).unwrap();
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty());
        assert_eq!(store.handles(), vec!["pub-dddd".to_string()]);
        assert!(store.load("pub-dddd").unwrap().is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_file_drops_row_without_quarantine_move() {
        let root = temp_root("missing-row");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-gone")).unwrap();
        store.save(&snapshot("pub-kept")).unwrap();
        drop(store);
        std::fs::remove_file(artifact_path(&root, "pub-gone")).unwrap();
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert_eq!(quarantined, vec!["pub-gone".to_string()]);
        assert_eq!(store.handles(), vec!["pub-kept".to_string()]);
        // Nothing to move: quarantine/ stays empty.
        let q: Vec<_> = std::fs::read_dir(root.join(QUARANTINE_DIR))
            .unwrap()
            .collect();
        assert!(q.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn remove_deletes_file_and_row() {
        let root = temp_root("remove");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-eeee")).unwrap();
        store.save(&snapshot("pub-ffff")).unwrap();
        assert!(store.remove("pub-eeee").unwrap());
        assert!(!store.remove("pub-eeee").unwrap());
        assert_eq!(store.handles(), vec!["pub-ffff".to_string()]);
        assert!(!store.path_of("pub-eeee").exists());
        drop(store);
        let (store, _) = ArtifactStore::open(&root).unwrap();
        assert_eq!(store.handles(), vec!["pub-ffff".to_string()]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn verify_reports_per_handle() {
        let root = temp_root("verify");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-good")).unwrap();
        store.save(&snapshot("pub-bad0")).unwrap();
        let mut bytes = std::fs::read(store.path_of("pub-bad0")).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(store.path_of("pub-bad0"), &bytes).unwrap();
        let report = store.verify();
        assert_eq!(report.len(), 2);
        let by_handle: BTreeMap<_, _> = report.into_iter().map(|(h, r)| (h, r.is_ok())).collect();
        assert!(by_handle["pub-good"]);
        assert!(!by_handle["pub-bad0"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_saves_keep_the_manifest_consistent() {
        let root = temp_root("concurrent");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        std::thread::scope(|s| {
            for i in 0..8 {
                let store = &store;
                s.spawn(move || {
                    store.save(&snapshot(&format!("pub-thread{i}"))).unwrap();
                });
            }
        });
        assert_eq!(store.len(), 8);
        // The manifest on disk must parse and list all eight — a torn
        // concurrent rewrite would fail this reopen.
        drop(store);
        let (store, quarantined) = ArtifactStore::open(&root).unwrap();
        assert!(quarantined.is_empty());
        assert_eq!(store.len(), 8);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn requarantine_preserves_earlier_copies() {
        let root = temp_root("requarantine");
        let (store, _) = ArtifactStore::open(&root).unwrap();
        store.save(&snapshot("pub-again")).unwrap();
        assert!(store.quarantine("pub-again").unwrap());
        store.save(&snapshot("pub-again")).unwrap();
        assert!(store.quarantine("pub-again").unwrap());
        let q = root.join(QUARANTINE_DIR);
        assert!(q.join("pub-again.bpub").exists());
        assert!(
            q.join("pub-again.bpub.1").exists(),
            "second quarantine must not overwrite the first copy"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unsafe_handles_are_rejected() {
        for bad in ["", "../escape", "a/b", ".hidden", "x y"] {
            assert!(validate_handle(bad).is_err(), "{bad:?} accepted");
        }
        assert!(validate_handle("pub-0123abcd").is_ok());
    }

    #[test]
    fn site_roster_has_no_duplicates() {
        let set: std::collections::BTreeSet<_> = site::VFS_SITES.iter().collect();
        assert_eq!(set.len(), site::VFS_SITES.len());
    }
}

//! BTBL — the versioned binary columnar snapshot of a [`Table`].
//!
//! Layout (all integers little-endian, framing per [`crate::codec`]):
//!
//! ```text
//! "BTBL" version(u32)
//! "schema"  rows(u64) arity(u32) default_sa(u32)
//!           per attribute: name, tag(u8: 0 numeric | 1 categorical),
//!             numeric:     count(u32) + count × f64 domain values
//!             categorical: nodes(u32) + per node (pre-order):
//!                          parent(u32, MAX = root) + label
//! "col.i"   width(u8 ∈ {1,2,4}) + rows × width packed codes
//! "end"     (empty payload — truncation guard)
//! ```
//!
//! The categorical node list *is* the string dictionary: leaf labels are the
//! values the column's codes index, written once per attribute instead of
//! once per row. Column codes are packed at the narrowest width the
//! attribute's cardinality allows (1 byte for ≤ 256 values — every CENSUS
//! attribute — so a snapshot is ~4× smaller than the in-memory `Vec<u32>`
//! columns).
//!
//! Every section carries an FNV-1a checksum of its payload; the reader
//! verifies each before decoding, re-validates the schema and every code
//! against its domain (via [`Schema::new`] / [`Table::from_columns`]), and
//! reports truncation, corruption and version skew as structured
//! [`StoreError`]s naming the failing section.

use crate::codec::{read_prologue, write_prologue, Section, SectionWriter};
use crate::error::{Result, StoreError};
use betalike_microdata::hierarchy::NodeSpec;
use betalike_microdata::schema::AttrKind;
use betalike_microdata::{Attribute, Hierarchy, Schema, Table, Value};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// The BTBL magic bytes.
pub const BTBL_MAGIC: &str = "BTBL";
/// Newest BTBL version this build writes and reads.
pub const BTBL_VERSION: u32 = 1;

/// Bytes per packed code for a domain of `cardinality` values.
fn code_width(cardinality: usize) -> u8 {
    if cardinality <= 1 << 8 {
        1
    } else if cardinality <= 1 << 16 {
        2
    } else {
        4
    }
}

/// Writes a table as a complete BTBL document.
///
/// # Errors
///
/// Propagates I/O failures; `Malformed` if the table exceeds format limits
/// (more than `u32::MAX` rows).
pub fn write_table<W: Write>(table: &Table, w: &mut W) -> Result<()> {
    if table.num_rows() > u32::MAX as usize {
        return Err(StoreError::malformed(
            "schema",
            "BTBL v1 holds at most 2^32 - 1 rows",
        ));
    }
    write_prologue(w, b"BTBL", BTBL_VERSION)?;

    let schema = table.schema();
    let mut s = SectionWriter::new("schema");
    s.u64(table.num_rows() as u64);
    s.u32(schema.arity() as u32);
    s.u32(schema.default_sa() as u32);
    for attr in schema.attributes() {
        s.str(attr.name());
        match attr.kind() {
            AttrKind::Numeric { values } => {
                s.u8(0);
                s.u32(values.len() as u32);
                for &v in values {
                    s.f64(v);
                }
            }
            AttrKind::Categorical { hierarchy } => {
                s.u8(1);
                s.u32(hierarchy.num_nodes() as u32);
                for node in 0..hierarchy.num_nodes() {
                    let parent = hierarchy.parent(node).map_or(u32::MAX, |p| p as u32);
                    s.u32(parent);
                    s.str(hierarchy.label(node));
                }
            }
        }
    }
    s.finish(w)?;

    for i in 0..schema.arity() {
        let width = code_width(schema.attr(i).cardinality());
        let mut c = SectionWriter::new(format!("col.{i}"));
        c.u8(width);
        for &v in table.column(i) {
            match width {
                1 => c.u8(v as u8),
                2 => c.bytes(&(v as u16).to_le_bytes()),
                _ => c.u32(v),
            }
        }
        c.finish(w)?;
    }

    SectionWriter::new("end").finish(w)?;
    Ok(())
}

/// Reads a complete BTBL document back into a validated [`Table`].
///
/// # Errors
///
/// Structured [`StoreError`]s: `BadMagic` / `VersionSkew` on a foreign or
/// newer file, `Truncated` / `Corrupt` naming the failing section, and
/// `Malformed` when a section decodes but fails schema or domain
/// validation.
pub fn read_table<R: BufRead>(r: &mut R) -> Result<Table> {
    read_prologue(r, BTBL_MAGIC, BTBL_VERSION)?;

    let mut s = Section::expect(r, "schema")?;
    let rows = s.len64()?;
    let arity = s.u32()? as usize;
    let default_sa = s.u32()? as usize;
    let mut attrs = Vec::with_capacity(arity.min(1 << 16));
    for _ in 0..arity {
        let name = s.str()?;
        match s.u8()? {
            0 => {
                let count = s.u32()? as usize;
                let mut values = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    values.push(s.f64()?);
                }
                attrs.push(
                    Attribute::numeric(&name, values)
                        .map_err(|e| StoreError::malformed("schema", e))?,
                );
            }
            1 => {
                let hierarchy = read_hierarchy(&mut s)?;
                attrs.push(Attribute::categorical(&name, hierarchy));
            }
            tag => {
                return Err(StoreError::malformed(
                    "schema",
                    format!("unknown attribute tag {tag}"),
                ))
            }
        }
    }
    s.finish()?;
    let schema =
        Arc::new(Schema::new(attrs, default_sa).map_err(|e| StoreError::malformed("schema", e))?);

    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(schema.arity());
    for i in 0..schema.arity() {
        let name = format!("col.{i}");
        let mut c = Section::expect(r, &name)?;
        let width = c.u8()?;
        // Like every other reader-side allocation, never pre-size from an
        // untrusted count alone: a crafted `rows` field must fail as
        // `Truncated` when the (size-capped) payload runs out, not abort
        // in the allocator.
        let mut col = Vec::with_capacity(rows.min(c.remaining() / width.max(1) as usize + 1));
        for _ in 0..rows {
            let v = match width {
                1 => c.u8()? as Value,
                2 => c.u16()? as Value,
                4 => c.u32()?,
                w => {
                    return Err(StoreError::malformed(
                        &name,
                        format!("unknown code width {w}"),
                    ))
                }
            };
            col.push(v);
        }
        c.finish()?;
        columns.push(col);
    }
    Section::expect(r, "end")?.finish()?;

    Table::from_columns(schema, columns).map_err(|e| StoreError::malformed("col", e))
}

/// Serializes the categorical dictionary: the hierarchy's pre-order
/// `(parent, label)` pairs uniquely determine the tree.
fn read_hierarchy(s: &mut Section) -> Result<Hierarchy> {
    let nodes = s.u32()? as usize;
    if nodes == 0 {
        return Err(StoreError::malformed("schema", "hierarchy has no nodes"));
    }
    let mut parents = Vec::with_capacity(nodes.min(1 << 20));
    let mut labels = Vec::with_capacity(nodes.min(1 << 20));
    for i in 0..nodes {
        let parent = s.u32()?;
        // Pre-order invariant: the root comes first, every other node's
        // parent precedes it.
        let ok = if i == 0 {
            parent == u32::MAX
        } else {
            (parent as usize) < i
        };
        if !ok {
            return Err(StoreError::malformed(
                "schema",
                format!("hierarchy node {i} has invalid parent {parent}"),
            ));
        }
        parents.push(parent);
        labels.push(s.str()?);
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let mut depth = vec![0u32; nodes];
    for i in 1..nodes {
        let p = parents[i] as usize;
        children[p].push(i);
        depth[i] = depth[p] + 1;
        if depth[i] > 64 {
            return Err(StoreError::malformed("schema", "hierarchy deeper than 64"));
        }
    }
    fn to_spec(node: usize, labels: &[String], children: &[Vec<usize>]) -> NodeSpec {
        if children[node].is_empty() {
            NodeSpec::leaf(labels[node].clone())
        } else {
            NodeSpec::internal(
                labels[node].clone(),
                children[node]
                    .iter()
                    .map(|&c| to_spec(c, labels, children))
                    .collect(),
            )
        }
    }
    Hierarchy::from_spec(&to_spec(0, &labels, &children))
        .map_err(|e| StoreError::malformed("schema", e))
}

/// [`write_table`] into a fresh buffer.
///
/// # Errors
///
/// As [`write_table`].
pub fn table_to_vec(table: &Table) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    write_table(table, &mut out)?;
    Ok(out)
}

/// [`read_table`] from an in-memory buffer.
///
/// # Errors
///
/// As [`read_table`], plus `Malformed` on trailing bytes after the
/// document.
pub fn table_from_slice(mut bytes: &[u8]) -> Result<Table> {
    let table = read_table(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(StoreError::malformed(
            "end",
            format!("{} trailing bytes after the document", bytes.len()),
        ));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::census::{self, CensusConfig};
    use betalike_microdata::patients;
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    /// Structural equality: schemas compare via `PartialEq`, columns by
    /// code.
    fn assert_tables_equal(a: &Table, b: &Table) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for i in 0..a.schema().arity() {
            assert_eq!(a.column(i), b.column(i), "column {i}");
        }
    }

    #[test]
    fn census_roundtrips_with_hierarchies() {
        let t = census::generate(&CensusConfig::new(700, 11));
        let bytes = table_to_vec(&t).unwrap();
        let back = table_from_slice(&bytes).unwrap();
        assert_tables_equal(&t, &back);
        // Hierarchy structure survives (work class is 3 levels deep).
        assert_eq!(back.schema().attr(4).hierarchy().unwrap().height(), 3);
        assert_eq!(back.decode_row(123), t.decode_row(123));
    }

    #[test]
    fn patients_and_synthetic_roundtrip() {
        for t in [
            patients::patients_table(),
            random_table(&SyntheticConfig {
                rows: 257,
                qi_cardinality: 300, // forces 2-byte packed codes
                seed: 3,
                ..Default::default()
            }),
        ] {
            let back = table_from_slice(&table_to_vec(&t).unwrap()).unwrap();
            assert_tables_equal(&t, &back);
        }
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = census::generate(&CensusConfig::new(1, 0)).prefix(0);
        let back = table_from_slice(&table_to_vec(&t).unwrap()).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema(), t.schema());
    }

    #[test]
    fn code_width_matches_cardinality() {
        assert_eq!(code_width(2), 1);
        assert_eq!(code_width(256), 1);
        assert_eq!(code_width(257), 2);
        assert_eq!(code_width(1 << 16), 2);
        assert_eq!(code_width((1 << 16) + 1), 4);
    }

    #[test]
    fn snapshot_is_compact() {
        // CENSUS: 6 attributes, all cardinalities <= 256 -> ~6 bytes/row
        // plus a fixed schema block.
        let t = census::generate(&CensusConfig::new(10_000, 1));
        let bytes = table_to_vec(&t).unwrap();
        assert!(
            bytes.len() < 10_000 * 7 + 4_096,
            "snapshot unexpectedly large: {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn foreign_and_newer_files_are_rejected() {
        let t = patients::patients_table();
        let mut bytes = table_to_vec(&t).unwrap();
        assert!(matches!(
            table_from_slice(b"JUNKJUNKJUNK"),
            Err(StoreError::BadMagic { .. })
        ));
        bytes[4] = 9; // version byte
        assert!(matches!(
            table_from_slice(&bytes),
            Err(StoreError::VersionSkew { found: 9, .. })
        ));
    }

    #[test]
    fn truncation_is_structured() {
        let t = patients::patients_table();
        let bytes = table_to_vec(&t).unwrap();
        for cut in [6, 20, bytes.len() / 2, bytes.len() - 3] {
            let err = table_from_slice(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }
}

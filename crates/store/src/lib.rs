//! # betalike-store
//!
//! Durable publication storage for the `betalike` workspace: the paper's
//! deliverable is a *published* table that outlives the publisher, so this
//! crate gives every publication a checksummed on-disk form that a
//! restarted `betalike-serve` reads back and serves **bit-identically**,
//! with zero pipeline recomputation. Three layers, std-only like the rest
//! of the workspace:
//!
//! * [`btbl`] — **BTBL**, a versioned little-endian binary columnar
//!   snapshot of a [`betalike_microdata::Table`]: magic + header,
//!   per-column typed blocks packed at the narrowest width the domain
//!   allows, the categorical string dictionary written once per attribute,
//!   and an FNV-1a checksum per section.
//! * [`bpub`] — **BPUB**, the publication envelope: the normalized publish
//!   parameters, the source table (nested BTBL), the publication form's
//!   stored state (EC row lists / perturbed column + plan), and the
//!   publish-time privacy audit.
//! * [`disk`] — the content-addressed [`disk::ArtifactStore`]:
//!   `<data-dir>/artifacts/pub-….bpub` plus an atomically rewritten
//!   `MANIFEST`, tempfile-then-rename writes, and quarantine of corrupt
//!   entries on open.
//!
//! Readers are defensive: truncation, corruption and version skew surface
//! as structured [`StoreError`]s naming the failing section, and decoded
//! schemas/codes are re-validated against their domains before a `Table`
//! is handed out.
//!
//! The `betalike-store` binary (`inspect`, `verify`, `export-json`,
//! `gc`) operates on a data directory without a running server; see the
//! README's "Durable publications" quickstart and `DESIGN.md` §9.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
// Backstops betalike-lint rule P1 (request/decode paths are panic-free)
// with rustc's own machinery; test code is exempt, matching P1's scope.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bpub;
pub mod btbl;
pub mod codec;
pub mod disk;
pub mod error;
pub mod obs;

pub use bpub::{
    publication_from_slice, publication_to_vec, CatalogSnapshot, FormSnapshot, PubParams,
    PublicationSnapshot,
};
pub use btbl::{table_from_slice, table_to_vec};
pub use disk::{ArtifactStore, StoreEntry};
pub use error::{Result, StoreError};
pub use obs::StoreObs;

//! `betalike-store` — offline tooling for a `betalike-serve` data
//! directory.
//!
//! ```text
//! betalike-store <command> --data-dir DIR [flags]
//!
//! commands:
//!   inspect  [--handle H]        one summary line per stored artifact
//!                                (or a detailed view of one handle)
//!   verify                       fully re-read and re-checksum every
//!                                artifact; non-zero exit on any damage
//!                                (the CI restart-smoke step runs this)
//!   export-json --handle H       decode one artifact to JSON on stdout
//!            [--out FILE]        (params, schema, audit, form, codes)
//!   gc --keep H [--keep H]...    delete every artifact except the kept
//!                                handles; rewrites the manifest atomically
//! ```
//!
//! Exit codes: 0 success, 1 failure (including any `verify` damage),
//! 2 usage error.

use betalike_microdata::json::Json;
use betalike_microdata::SchemaSpec;
use betalike_store::{ArtifactStore, FormSnapshot, PublicationSnapshot};
use std::collections::BTreeMap;

fn main() {
    match run() {
        Ok(()) => {}
        Err(Failure { message, code }) => {
            eprintln!("betalike-store: {message}");
            std::process::exit(code);
        }
    }
}

struct Failure {
    message: String,
    code: i32,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Self {
        Failure {
            message: message.into(),
            code: 2,
        }
    }

    fn error(message: impl std::fmt::Display) -> Self {
        Failure {
            message: message.to_string(),
            code: 1,
        }
    }
}

struct Args {
    command: String,
    flags: BTreeMap<String, Vec<String>>,
}

impl Args {
    fn parse() -> Result<Args, Failure> {
        let mut command = None;
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| Failure::usage(format!("--{key} expects a value")))?;
                flags.entry(key.into()).or_default().push(value);
            } else if command.is_none() {
                command = Some(arg);
            } else {
                return Err(Failure::usage(format!(
                    "unexpected positional argument `{arg}`"
                )));
            }
        }
        Ok(Args {
            command: command.ok_or_else(|| {
                Failure::usage("no command (inspect | verify | export-json | gc)")
            })?,
            flags,
        })
    }

    fn one(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, Failure> {
        self.one(key)
            .ok_or_else(|| Failure::usage(format!("--{key} is required")))
    }
}

fn run() -> Result<(), Failure> {
    let args = Args::parse()?;
    let data_dir = args.required("data-dir")?;
    let (store, quarantined) = ArtifactStore::open(data_dir).map_err(Failure::error)?;
    for handle in &quarantined {
        eprintln!("betalike-store: quarantined corrupt artifact `{handle}` on open");
    }
    match args.command.as_str() {
        "inspect" => inspect(&store, args.one("handle")),
        "verify" => verify(&store),
        "export-json" => export_json(&store, args.required("handle")?, args.one("out")),
        "gc" => {
            let keep = args.flags.get("keep").cloned().unwrap_or_default();
            gc(&store, &keep)
        }
        other => Err(Failure::usage(format!("unknown command `{other}`"))),
    }
}

fn form_summary(snap: &PublicationSnapshot) -> String {
    match &snap.form {
        FormSnapshot::Generalized { ecs } => format!("ecs={}", ecs.len()),
        FormSnapshot::Perturbed { support, .. } => format!("m={}", support.len()),
        FormSnapshot::Anatomy => "histogram".into(),
    }
}

fn inspect(store: &ArtifactStore, handle: Option<&str>) -> Result<(), Failure> {
    let handles = match handle {
        Some(h) => vec![h.to_string()],
        None => store.handles(),
    };
    if handles.is_empty() {
        println!("(no stored artifacts)");
        return Ok(());
    }
    for h in handles {
        let entry = store
            .entry(&h)
            .ok_or_else(|| Failure::error(format!("unknown handle `{h}`")))?;
        let snap = store
            .load(&h)
            .map_err(|e| Failure::error(format!("{h}: {e}")))?
            .ok_or_else(|| Failure::error(format!("{h}: entry vanished during inspect")))?;
        println!(
            "{h} kind={} algo={} dataset={} rows={} {} audit={} bytes={} checksum={:016x}",
            snap.form.kind(),
            snap.params.algo,
            snap.params.dataset_key,
            snap.table.num_rows(),
            form_summary(&snap),
            if snap.audit.is_some() { "yes" } else { "no" },
            entry.bytes,
            entry.checksum,
        );
    }
    Ok(())
}

fn verify(store: &ArtifactStore) -> Result<(), Failure> {
    let report = store.verify();
    if report.is_empty() {
        println!("(no stored artifacts)");
        return Ok(());
    }
    let mut damaged = 0usize;
    for (handle, result) in &report {
        match result {
            Ok(entry) => println!("{handle} OK ({} bytes)", entry.bytes),
            Err(e) => {
                damaged += 1;
                println!("{handle} DAMAGED: {e}");
            }
        }
    }
    if damaged > 0 {
        return Err(Failure::error(format!(
            "{damaged} of {} artifacts damaged",
            report.len()
        )));
    }
    println!("all {} artifacts verified", report.len());
    Ok(())
}

fn export_json(store: &ArtifactStore, handle: &str, out: Option<&str>) -> Result<(), Failure> {
    let snap = store
        .load(handle)
        .map_err(Failure::error)?
        .ok_or_else(|| Failure::error(format!("unknown handle `{handle}`")))?;
    let doc = snapshot_to_json(&snap).map_err(Failure::error)?;
    let text = doc.pretty() + "\n";
    match out {
        Some(path) => {
            use betalike_faults::{RealVfs, Vfs};
            RealVfs
                .write(
                    "export-json.write",
                    std::path::Path::new(path),
                    text.as_bytes(),
                )
                .map_err(|e| Failure::error(format!("write {path}: {e}")))?
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn snapshot_to_json(snap: &PublicationSnapshot) -> Result<Json, String> {
    let p = &snap.params;
    let nums_u32 = |xs: &[u32]| Json::Arr(xs.iter().map(|&x| Json::Num(x as f64)).collect());
    let nums_f64 = |xs: &[f64]| Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect());
    let params = Json::Obj(vec![
        ("handle".into(), Json::Str(p.handle.clone())),
        ("canonical".into(), Json::Str(p.canonical.clone())),
        ("dataset".into(), Json::Str(p.dataset_key.clone())),
        ("algo".into(), Json::Str(p.algo.clone())),
        ("qi_prefix".into(), Json::Num(p.qi_prefix as f64)),
        ("beta".into(), Json::Num(p.beta)),
        ("t".into(), Json::Num(p.t)),
        ("seed".into(), Json::Num(p.seed as f64)),
        ("qi".into(), nums_u32(&p.qi)),
        ("sa".into(), Json::Num(p.sa as f64)),
    ]);
    let schema_json = SchemaSpec::from_schema(snap.table.schema()).to_json();
    let schema = Json::parse(&schema_json).map_err(|e| e.to_string())?;
    let form = match &snap.form {
        FormSnapshot::Generalized { ecs } => Json::Obj(vec![
            ("kind".into(), Json::Str("generalized".into())),
            (
                "ecs".into(),
                Json::Arr(ecs.iter().map(|ec| nums_u32(ec)).collect()),
            ),
        ]),
        FormSnapshot::Perturbed {
            sa_column,
            support,
            priors,
            caps,
            gammas,
            alphas,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("perturbed".into())),
            ("sa_column".into(), nums_u32(sa_column)),
            ("support".into(), nums_u32(support)),
            ("priors".into(), nums_f64(priors)),
            ("caps".into(), nums_f64(caps)),
            ("gammas".into(), nums_f64(gammas)),
            ("alphas".into(), nums_f64(alphas)),
        ]),
        FormSnapshot::Anatomy => Json::Obj(vec![("kind".into(), Json::Str("anatomy".into()))]),
    };
    let audit = match &snap.audit {
        None => Json::Null,
        Some(a) => Json::Obj(vec![
            ("max_beta".into(), Json::Num(a.max_beta)),
            ("avg_beta".into(), Json::Num(a.avg_beta)),
            ("max_closeness".into(), Json::Num(a.max_closeness)),
            ("avg_closeness".into(), Json::Num(a.avg_closeness)),
            ("min_distinct_l".into(), Json::Num(a.min_distinct_l as f64)),
            ("avg_distinct_l".into(), Json::Num(a.avg_distinct_l)),
            ("min_inv_max_freq_l".into(), Json::Num(a.min_inv_max_freq_l)),
            ("max_delta".into(), Json::Num(a.max_delta)),
            ("min_ec_size".into(), Json::Num(a.min_ec_size as f64)),
            ("num_ecs".into(), Json::Num(a.num_ecs as f64)),
        ]),
    };
    let columns: Vec<Json> = (0..snap.table.schema().arity())
        .map(|i| nums_u32(snap.table.column(i)))
        .collect();
    Ok(Json::Obj(vec![
        ("params".into(), params),
        ("schema".into(), schema),
        ("rows".into(), Json::Num(snap.table.num_rows() as f64)),
        ("columns".into(), Json::Arr(columns)),
        ("form".into(), form),
        ("audit".into(), audit),
    ]))
}

fn gc(store: &ArtifactStore, keep: &[String]) -> Result<(), Failure> {
    if keep.is_empty() {
        return Err(Failure::usage(
            "gc requires at least one --keep HANDLE (refusing to delete everything)",
        ));
    }
    for handle in keep {
        if store.entry(handle).is_none() {
            return Err(Failure::error(format!(
                "--keep {handle}: no such stored artifact"
            )));
        }
    }
    let mut removed = 0usize;
    for handle in store.handles() {
        if keep.iter().any(|k| k == &handle) {
            continue;
        }
        store
            .remove(&handle)
            .map_err(|e| Failure::error(format!("remove {handle}: {e}")))?;
        println!("removed {handle}");
        removed += 1;
    }
    println!("kept {} artifact(s), removed {removed}", keep.len());
    Ok(())
}

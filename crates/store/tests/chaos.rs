//! Chaos-Vfs regression tests for the artifact store.
//!
//! The headline regression: a *transient* read error while `open` verifies
//! a manifest entry must NOT quarantine the file (the bytes may be fine —
//! moving them aside can bury the only healthy copy). Only a checksum
//! mismatch quarantines; a missing file drops the stale row; anything else
//! aborts the open for the caller to retry.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use betalike_faults::{ChaosVfs, FaultPlan, RealVfs};
use betalike_microdata::synthetic::{random_table, SyntheticConfig};
use betalike_store::bpub::{FormSnapshot, PubParams};
use betalike_store::disk::{site, DEGRADED_AFTER, QUARANTINE_DIR};
use betalike_store::{ArtifactStore, PublicationSnapshot};

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("betalike-store-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn snapshot(handle: &str) -> PublicationSnapshot {
    let table = random_table(&SyntheticConfig {
        rows: 30,
        seed: 9,
        ..Default::default()
    });
    PublicationSnapshot {
        params: PubParams {
            handle: handle.into(),
            canonical: format!("canonical-of-{handle}"),
            dataset_name: "synthetic".into(),
            dataset_rows: 30,
            dataset_seed: 9,
            dataset_key: "synthetic:rows=30:seed=9".into(),
            algo: "anatomy".into(),
            qi_prefix: 0,
            beta: 0.0,
            t: 0.0,
            seed: 0,
            qi: vec![],
            qi_pool: vec![0, 1],
            sa: 2,
        },
        table,
        form: FormSnapshot::Anatomy,
        audit: None,
        catalog: None,
    }
}

fn seeded_store(root: &PathBuf, handles: &[&str]) {
    let (store, _) = ArtifactStore::open(root).unwrap();
    for h in handles {
        store.save(&snapshot(h)).unwrap();
    }
}

#[test]
fn transient_read_error_on_open_does_not_quarantine() {
    let root = temp_root("transient");
    seeded_store(&root, &["pub-healthy"]);

    // A permission error (disk hiccup, stolen fd, …) while verifying the
    // entry: open must FAIL, not judge the file.
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::FailSite {
        site: site::OPEN_READ_ARTIFACT,
        nth: 0,
        kind: io::ErrorKind::PermissionDenied,
    }));
    let err = ArtifactStore::open_with(&root, chaos).unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "open should surface the transient error, got: {err}"
    );

    // The file was not touched: a clean reopen still serves it.
    let q: Vec<_> = std::fs::read_dir(root.join(QUARANTINE_DIR))
        .unwrap()
        .collect();
    assert!(q.is_empty(), "transient error must not move files aside");
    let (store, quarantined) = ArtifactStore::open(&root).unwrap();
    assert!(quarantined.is_empty());
    assert!(store.load("pub-healthy").unwrap().is_some());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn interrupted_read_on_open_is_retried_transparently() {
    let root = temp_root("interrupted");
    seeded_store(&root, &["pub-healthy"]);

    // EINTR on the first verify read: the store retries and the open
    // succeeds with nothing quarantined.
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::FailSite {
        site: site::OPEN_READ_ARTIFACT,
        nth: 0,
        kind: io::ErrorKind::Interrupted,
    }));
    let (store, quarantined) = ArtifactStore::open_with(&root, chaos).unwrap();
    assert!(quarantined.is_empty());
    assert!(store.load("pub-healthy").unwrap().is_some());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn transient_orphan_read_error_aborts_open_without_quarantine() {
    let root = temp_root("orphan-transient");
    seeded_store(&root, &["pub-orphan"]);
    // Make it an orphan (manifest lost after the artifact rename).
    std::fs::remove_file(root.join("MANIFEST")).unwrap();

    let chaos = Arc::new(ChaosVfs::new(FaultPlan::FailSite {
        site: site::OPEN_READ_ORPHAN,
        nth: 0,
        kind: io::ErrorKind::PermissionDenied,
    }));
    assert!(ArtifactStore::open_with(&root, chaos).is_err());
    let q: Vec<_> = std::fs::read_dir(root.join(QUARANTINE_DIR))
        .unwrap()
        .collect();
    assert!(q.is_empty());
    // Clean reopen adopts the orphan.
    let (store, quarantined) = ArtifactStore::open(&root).unwrap();
    assert!(quarantined.is_empty());
    assert!(store.load("pub-orphan").unwrap().is_some());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quarantine_rename_failure_falls_back_to_copy_and_remove() {
    let root = temp_root("fallback");
    seeded_store(&root, &["pub-torn"]);
    // Corrupt the file so open wants to quarantine it.
    let path = root.join("artifacts").join("pub-torn.bpub");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let chaos = Arc::new(ChaosVfs::new(FaultPlan::FailSite {
        site: site::QUARANTINE_RENAME,
        nth: 0,
        kind: io::ErrorKind::InvalidInput,
    }));
    let (store, quarantined) = ArtifactStore::open_with(&root, chaos.clone()).unwrap();
    assert_eq!(quarantined, vec!["pub-torn".to_string()]);
    assert!(store.is_empty());
    assert!(
        !path.exists(),
        "fallback copy+remove must still evict the damaged file"
    );
    assert!(root.join(QUARANTINE_DIR).join("pub-torn.bpub").exists());
    let seen = chaos.sites_seen();
    assert!(seen.contains(site::QUARANTINE_FALLBACK_COPY));
    assert!(seen.contains(site::QUARANTINE_FALLBACK_REMOVE));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn consecutive_save_failures_trip_degraded_and_success_resets() {
    let root = temp_root("degraded");
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::None));
    let (store, _) = ArtifactStore::open_with(&root, chaos.clone()).unwrap();
    store.save(&snapshot("pub-first")).unwrap();
    assert!(!store.degraded());

    chaos.set_plan(FaultPlan::FailWrites);
    for i in 0..DEGRADED_AFTER {
        assert!(!store.degraded(), "tripped early at failure {i}");
        assert!(store.save(&snapshot(&format!("pub-fail{i}"))).is_err());
    }
    assert!(store.degraded());
    assert_eq!(store.write_failures(), DEGRADED_AFTER);

    // Reads keep working in degraded mode.
    assert!(store.load("pub-first").unwrap().is_some());

    // The disk comes back: one good save clears the state.
    chaos.set_plan(FaultPlan::None);
    store.save(&snapshot("pub-recovered")).unwrap();
    assert!(!store.degraded());
    assert_eq!(store.write_failures(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn probe_detects_recovery_and_clears_degraded() {
    let root = temp_root("probe");
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::None));
    let (store, _) = ArtifactStore::open_with(&root, chaos.clone()).unwrap();

    chaos.set_plan(FaultPlan::FailWrites);
    for i in 0..DEGRADED_AFTER {
        assert!(store.save(&snapshot(&format!("pub-fail{i}"))).is_err());
    }
    assert!(store.degraded());

    // While the disk is broken the probe fails and changes nothing.
    assert!(store.probe().is_err());
    assert!(store.degraded());

    // Disk recovers: one probe clears the state, no artifact risked, and
    // no probe file left behind.
    chaos.set_plan(FaultPlan::None);
    store.probe().unwrap();
    assert!(!store.degraded());
    assert_eq!(store.write_failures(), 0);
    assert!(!root.join("artifacts").join(".probe.tmp").exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn failed_save_leaves_prior_state_intact() {
    let root = temp_root("failed-save");
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::None));
    let (store, _) = ArtifactStore::open_with(&root, chaos.clone()).unwrap();
    store.save(&snapshot("pub-kept")).unwrap();

    // Occurrence counting is since ChaosVfs creation: the save of
    // `pub-kept` already used `save.rename` once, so fail the next one.
    chaos.set_plan(FaultPlan::FailSite {
        site: site::SAVE_RENAME,
        nth: 1,
        kind: io::ErrorKind::WriteZero,
    });
    assert!(store.save(&snapshot("pub-lost")).is_err());
    chaos.set_plan(FaultPlan::None);

    drop(store);
    let (store, quarantined) = ArtifactStore::open_with(&root, Arc::new(RealVfs)).unwrap();
    assert!(quarantined.is_empty());
    assert_eq!(store.handles(), vec!["pub-kept".to_string()]);
    assert!(store.load("pub-kept").unwrap().is_some());
    let _ = std::fs::remove_dir_all(&root);
}

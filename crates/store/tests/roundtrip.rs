//! Property tests: arbitrary synthetic tables (and real pipeline outputs
//! over them) survive a BTBL/BPUB write → read round trip exactly —
//! including bit-identical audit statistics.

use betalike::model::BetaLikeness;
use betalike::{burel, perturb, BurelConfig};
use betalike_metrics::audit::{audit_partition, ClosenessMetric};
use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};
use betalike_microdata::Table;
use betalike_store::{
    publication_from_slice, publication_to_vec, table_from_slice, table_to_vec, FormSnapshot,
    PubParams, PublicationSnapshot,
};
use proptest::prelude::*;

fn synthetic(rows: usize, qi_attrs: usize, qi_card: usize, sa_card: usize, seed: u64) -> Table {
    random_table(&SyntheticConfig {
        rows,
        qi_attrs,
        qi_cardinality: qi_card,
        sa_cardinality: sa_card,
        sa_shape: SaShape::Zipf(1.0),
        seed,
    })
}

fn params_for(table: &Table, algo: &str, handle: &str) -> PubParams {
    let sa = table.schema().default_sa();
    PubParams {
        handle: handle.into(),
        canonical: format!("prop|{algo}"),
        dataset_name: "synthetic".into(),
        dataset_rows: table.num_rows() as u64,
        dataset_seed: 0,
        dataset_key: "synthetic:test".into(),
        algo: algo.into(),
        qi_prefix: sa as u32,
        beta: 4.0,
        t: 0.0,
        seed: 42,
        qi: (0..sa as u32).collect(),
        qi_pool: (0..sa as u32).collect(),
        sa: sa as u32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated table round-trips through BTBL exactly (schema and
    /// every column), across 1- and 2-byte packed code widths.
    #[test]
    fn btbl_roundtrips_arbitrary_tables(
        rows in 1usize..300,
        qi_attrs in 1usize..4,
        qi_card in 2usize..400,
        sa_card in 2usize..12,
        seed in 0u64..10_000,
    ) {
        let table = synthetic(rows, qi_attrs, qi_card, sa_card, seed);
        let bytes = table_to_vec(&table).unwrap();
        let back = table_from_slice(&bytes).unwrap();
        prop_assert_eq!(&back, &table);
    }

    /// A real BUREL publication over an arbitrary table — partition, audit
    /// and all — survives the BPUB round trip with the audit statistics
    /// bit-identical.
    #[test]
    fn bpub_generalized_roundtrips_with_audit(
        rows in 60usize..240,
        seed in 0u64..5_000,
    ) {
        let table = synthetic(rows, 2, 32, 6, seed);
        let sa = table.schema().default_sa();
        let qi: Vec<usize> = (0..sa).collect();
        let partition = match burel(&table, &qi, sa, &BurelConfig::new(4.0).with_seed(7)) {
            Ok(p) => p,
            // Rare skewed draws can make β = 4 unsatisfiable; that is the
            // algorithm's contract, not the store's.
            Err(_) => return,
        };
        let audit = audit_partition(&table, &partition, ClosenessMetric::EqualDistance);
        let snap = PublicationSnapshot {
            params: params_for(&table, "burel", "pub-prop-gen"),
            table: table.clone(),
            form: FormSnapshot::Generalized {
                ecs: partition
                    .ecs()
                    .iter()
                    .map(|ec| ec.iter().map(|&r| r as u32).collect())
                    .collect(),
            },
            audit: Some(audit.clone()),
            catalog: None,
        };
        let back = publication_from_slice(&publication_to_vec(&snap).unwrap()).unwrap();
        prop_assert_eq!(&back.table, &table);
        prop_assert_eq!(&back.form, &snap.form);
        let stored = back.audit.unwrap();
        prop_assert_eq!(stored.max_beta.to_bits(), audit.max_beta.to_bits());
        prop_assert_eq!(stored.avg_closeness.to_bits(), audit.avg_closeness.to_bits());
        prop_assert_eq!(stored.num_ecs, audit.num_ecs);
        prop_assert_eq!(stored.min_ec_size, audit.min_ec_size);
    }

    /// A real perturbation publication — randomized column plus the plan's
    /// float series — survives the BPUB round trip bitwise.
    #[test]
    fn bpub_perturbed_roundtrips_bitwise(
        rows in 40usize..200,
        sa_card in 3usize..10,
        seed in 0u64..5_000,
    ) {
        let table = synthetic(rows, 2, 16, sa_card, seed);
        let sa = table.schema().default_sa();
        let model = BetaLikeness::new(2.0).unwrap();
        let published = match perturb(&table, sa, &model, seed ^ 0xbeef) {
            Ok(p) => p,
            // A draw whose SA support degenerates to one value cannot be
            // perturbed; not a store property.
            Err(_) => return,
        };
        let plan = &published.plan;
        let snap = PublicationSnapshot {
            params: params_for(&table, "perturb", "pub-prop-pert"),
            table: table.clone(),
            form: FormSnapshot::Perturbed {
                sa_column: published.table.column(sa).to_vec(),
                support: plan.support().to_vec(),
                priors: plan.priors().to_vec(),
                caps: plan.caps().to_vec(),
                gammas: plan.gammas().to_vec(),
                alphas: plan.alphas().to_vec(),
            },
            audit: None,
            catalog: None,
        };
        let back = publication_from_slice(&publication_to_vec(&snap).unwrap()).unwrap();
        let FormSnapshot::Perturbed { sa_column, alphas, priors, .. } = &back.form else {
            panic!("form kind changed in flight");
        };
        prop_assert_eq!(sa_column, published.table.column(sa));
        for (got, want) in alphas.iter().zip(plan.alphas()) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
        for (got, want) in priors.iter().zip(plan.priors()) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}

//! Corruption drills: flip one byte in *every* section of a BTBL and a
//! BPUB document and assert the reader reports a checksum failure naming
//! exactly that section (never a panic, never a wrong-section diagnosis).

use betalike_microdata::census::{self, CensusConfig};
use betalike_store::{
    publication_from_slice, publication_to_vec, table_from_slice, table_to_vec, FormSnapshot,
    PubParams, PublicationSnapshot, StoreError,
};

/// Walks the section frames of a document (after the 4-byte magic and
/// 4-byte version), returning `(name, payload_offset, payload_len)` per
/// section.
fn sections(bytes: &[u8]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut pos = 8;
    while pos < bytes.len() {
        let name_len = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        pos += 2;
        let name = String::from_utf8(bytes[pos..pos + name_len].to_vec()).unwrap();
        pos += name_len;
        let payload_len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        out.push((name, pos, payload_len));
        pos += payload_len + 8; // payload + checksum
    }
    out
}

fn snapshot() -> PublicationSnapshot {
    let table = census::generate(&CensusConfig::new(300, 4));
    PublicationSnapshot {
        params: PubParams {
            handle: "pub-corruption-test".into(),
            canonical: "census:rows=300:seed=4|algo=burel".into(),
            dataset_name: "census".into(),
            dataset_rows: 300,
            dataset_seed: 4,
            dataset_key: "census:rows=300:seed=4".into(),
            algo: "burel".into(),
            qi_prefix: 3,
            beta: 4.0,
            t: 0.0,
            seed: 42,
            qi: vec![0, 1, 2],
            qi_pool: vec![0, 1, 2, 3, 4],
            sa: 5,
        },
        table,
        form: FormSnapshot::Generalized {
            ecs: (0..30u32)
                .map(|i| (i * 10..(i + 1) * 10).collect())
                .collect(),
        },
        audit: None,
        catalog: None,
    }
}

#[test]
fn btbl_flip_one_byte_per_section_names_the_section() {
    let table = census::generate(&CensusConfig::new(300, 4));
    let bytes = table_to_vec(&table).unwrap();
    let all = sections(&bytes);
    // CENSUS: schema + six columns + end.
    let names: Vec<&str> = all.iter().map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(
        names,
        ["schema", "col.0", "col.1", "col.2", "col.3", "col.4", "col.5", "end"]
    );
    for (name, offset, len) in &all {
        if *len == 0 {
            continue; // "end" has no payload bytes to flip
        }
        let mut mutated = bytes.clone();
        mutated[offset + len / 2] ^= 0xff;
        let err = table_from_slice(&mutated).unwrap_err();
        assert!(
            err.to_string().contains(&format!("`{name}`")),
            "message must name the section: {err}"
        );
        match err {
            StoreError::Corrupt { section, .. } => {
                assert_eq!(&section, name, "wrong section blamed");
            }
            other => panic!("section `{name}`: expected Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn bpub_flip_one_byte_per_section_names_the_section() {
    let bytes = publication_to_vec(&snapshot()).unwrap();
    let all = sections(&bytes);
    let names: Vec<&str> = all.iter().map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(names, ["params", "table", "form", "audit", "end"]);
    for (name, offset, len) in &all {
        if *len == 0 {
            continue;
        }
        let mut mutated = bytes.clone();
        mutated[offset + len / 2] ^= 0xff;
        let err = publication_from_slice(&mutated).unwrap_err();
        match err {
            StoreError::Corrupt { section, .. } => {
                assert_eq!(&section, name, "wrong section blamed");
            }
            other => panic!("section `{name}`: expected Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn flipping_a_checksum_byte_is_also_corruption() {
    let bytes = publication_to_vec(&snapshot()).unwrap();
    let (name, offset, len) = sections(&bytes)[0].clone();
    let mut mutated = bytes.clone();
    mutated[offset + len] ^= 0x01; // first byte of the recorded checksum
    match publication_from_slice(&mutated).unwrap_err() {
        StoreError::Corrupt { section, .. } => assert_eq!(section, name),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn truncation_anywhere_is_structured() {
    let bytes = publication_to_vec(&snapshot()).unwrap();
    for fraction in 1..8 {
        let cut = bytes.len() * fraction / 8;
        let err = publication_from_slice(&bytes[..cut.max(1)]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::BadMagic { .. }
            ),
            "cut at {cut}: {err:?}"
        );
    }
}

/// Byte offsets at which each section's frame *ends* (checksum included):
/// truncating exactly there leaves a prefix of whole sections.
fn section_boundaries(bytes: &[u8]) -> Vec<(String, usize)> {
    sections(bytes)
        .into_iter()
        .map(|(name, offset, len)| (name, offset + len + 8))
        .collect()
}

#[test]
fn bpub_truncation_at_every_section_boundary_is_structured() {
    let bytes = publication_to_vec(&snapshot()).unwrap();
    let boundaries = section_boundaries(&bytes);
    assert_eq!(boundaries.last().unwrap().1, bytes.len());
    for (i, (after, end)) in boundaries.iter().enumerate() {
        if *end == bytes.len() {
            // The final boundary is the complete document.
            assert!(publication_from_slice(&bytes[..*end]).is_ok());
            continue;
        }
        // Exactly at the boundary: the next section's header is missing.
        let err = publication_from_slice(&bytes[..*end]).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "cut after `{after}` (boundary {i}): expected Truncated, got {err:?}"
        );
        // A few bytes into the next frame: still structured, never a
        // panic, never a checksum lie.
        for extra in [1usize, 2, 7] {
            let cut = (*end + extra).min(bytes.len() - 1);
            let err = publication_from_slice(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::Malformed { .. }
                ),
                "cut {extra} bytes after `{after}`: got {err:?}"
            );
        }
    }
}

#[test]
fn btbl_truncation_at_every_section_boundary_is_structured() {
    let table = census::generate(&CensusConfig::new(200, 6));
    let bytes = table_to_vec(&table).unwrap();
    for (after, end) in section_boundaries(&bytes) {
        if end == bytes.len() {
            assert!(table_from_slice(&bytes[..end]).is_ok());
            continue;
        }
        let err = table_from_slice(&bytes[..end]).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "cut after `{after}`: expected Truncated, got {err:?}"
        );
    }
}

#[test]
fn bpub_truncation_mid_header_names_the_header() {
    // Cut inside a section *header* (name length / name / payload length),
    // where no payload checksum exists to blame: the reader must still
    // produce a structured truncation, not a wrong-section diagnosis.
    let bytes = publication_to_vec(&snapshot()).unwrap();
    for (_, end) in section_boundaries(&bytes) {
        if end >= bytes.len() {
            continue;
        }
        // 1 byte of the next name-length field.
        let err = publication_from_slice(&bytes[..end + 1]).unwrap_err();
        match err {
            StoreError::Truncated { section } => {
                assert_eq!(section, "section header", "cut at {}", end + 1);
            }
            other => panic!("expected Truncated at the header, got {other:?}"),
        }
    }
}

#[test]
fn version_skew_is_reported_not_misparsed() {
    let mut bytes = publication_to_vec(&snapshot()).unwrap();
    bytes[4] = 200;
    assert!(matches!(
        publication_from_slice(&bytes).unwrap_err(),
        StoreError::VersionSkew {
            found: 200,
            supported: 1
        }
    ));
}

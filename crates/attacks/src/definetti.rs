//! A simplified deFinetti attack (Kifer, SIGMOD 2009; discussed in
//! Section 7 of the paper).
//!
//! The attack exploits divergence between each EC's local SA distribution
//! and the published table's global one: starting from an arbitrary
//! assignment of the EC's SA multiset to its tuples, it iteratively
//!
//! 1. trains a Naïve-Bayes classifier `Pr[t_j | v_i]` on the *current*
//!    assignment (exact QI values are visible), then
//! 2. re-matches, inside every EC, SA values to tuples greedily by
//!    classifier confidence,
//!
//! until the assignment stabilizes. Record-level accuracy is compared to
//! the in-EC random-matching baseline `Σ_G (|G|/|DB|) Σ_i (q_i^G)²` — the
//! probability a random permutation pins the right value.
//!
//! β-likeness bounds the local-global divergence by construction, so the
//! attack's edge over the baseline shrinks as β does (the Section 7
//! argument).

use betalike_metrics::Partition;
use betalike_microdata::{Table, Value};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`definetti_attack`].
#[derive(Debug, Clone)]
pub struct DefinettiConfig {
    /// Maximum refinement rounds.
    pub max_iters: usize,
    /// RNG seed for the initial in-EC permutation.
    pub seed: u64,
}

impl Default for DefinettiConfig {
    fn default() -> Self {
        DefinettiConfig {
            max_iters: 10,
            seed: 1,
        }
    }
}

/// Result of the attack.
#[derive(Debug, Clone, PartialEq)]
pub struct DefinettiOutcome {
    /// Fraction of tuples whose SA value the final matching pins correctly.
    pub accuracy: f64,
    /// Expected accuracy of a uniformly random in-EC matching.
    pub random_baseline: f64,
    /// Rounds until convergence (or `max_iters`).
    pub iterations: usize,
}

/// Runs the attack against a generalized publication.
pub fn definetti_attack(
    table: &Table,
    partition: &Partition,
    cfg: &DefinettiConfig,
) -> DefinettiOutcome {
    let sa = partition.sa();
    let qi = partition.qi();
    let m = table.schema().attr(sa).cardinality();
    let n = table.num_rows();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Current guess: per EC, an assignment of its SA multiset to its rows.
    // Initialized by random permutation (the attacker knows the multiset,
    // not the matching).
    let sa_col = table.column(sa);
    let mut assigned: Vec<Value> = vec![0; n];
    for ec in partition.ecs() {
        let mut values: Vec<Value> = ec.iter().map(|&r| sa_col[r]).collect();
        values.shuffle(&mut rng);
        for (&r, &v) in ec.iter().zip(&values) {
            assigned[r] = v;
        }
    }

    // Random-matching baseline: Σ_G (|G|/n) Σ_i (q_i)².
    let random_baseline = partition
        .ecs()
        .iter()
        .enumerate()
        .map(|(i, ec)| {
            let q = partition.ec_distribution(table, i);
            let hit: f64 = q.freqs().iter().map(|&f| f * f).sum();
            ec.len() as f64 / n as f64 * hit
        })
        .sum();

    let card: Vec<usize> = qi
        .iter()
        .map(|&a| table.schema().attr(a).cardinality())
        .collect();
    let mut iterations = 0;
    for round in 0..cfg.max_iters {
        iterations = round + 1;
        // Train NB on the current assignment: counts[dim][value][sa].
        let mut counts: Vec<Vec<f64>> = card.iter().map(|&c| vec![0.0; c * m]).collect();
        let mut class_totals = vec![0.0f64; m];
        for r in 0..n {
            let v = assigned[r] as usize;
            class_totals[v] += 1.0;
            for (dim, &a) in qi.iter().enumerate() {
                counts[dim][table.value(r, a) as usize * m + v] += 1.0;
            }
        }

        // Re-match inside each EC greedily by log-likelihood, with
        // add-one smoothing to keep scores finite.
        let mut changed = 0usize;
        for ec in partition.ecs() {
            let mut remaining: Vec<Value> = ec.iter().map(|&r| sa_col[r]).collect();
            // Candidate (score, row, value-slot) triples; greedy: highest
            // confidence first.
            let mut prefs: Vec<(f64, usize, Value)> = Vec::new();
            let distinct: std::collections::BTreeSet<Value> = remaining.iter().copied().collect();
            for &r in ec {
                for &v in &distinct {
                    let vi = v as usize;
                    let mut score = (class_totals[vi] + 1.0).ln();
                    for (dim, &a) in qi.iter().enumerate() {
                        let c = counts[dim][table.value(r, a) as usize * m + vi];
                        score += ((c + 1.0) / (class_totals[vi] + card[dim] as f64)).ln();
                    }
                    prefs.push((score, r, v));
                }
            }
            prefs.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            let mut row_done: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            for (_, r, v) in prefs {
                if row_done.contains(&r) {
                    continue;
                }
                if let Some(pos) = remaining.iter().position(|&x| x == v) {
                    remaining.swap_remove(pos);
                    if assigned[r] != v {
                        changed += 1;
                    }
                    assigned[r] = v;
                    row_done.insert(r);
                }
            }
            // Any rows left unmatched (their preferred values exhausted)
            // take the leftovers in order.
            for &r in ec {
                if !row_done.contains(&r) {
                    let v = remaining.pop().expect("multiset sizes match");
                    if assigned[r] != v {
                        changed += 1;
                    }
                    assigned[r] = v;
                }
            }
        }
        if changed == 0 {
            break;
        }
    }

    let hits = (0..n).filter(|&r| assigned[r] == sa_col[r]).count();
    DefinettiOutcome {
        accuracy: hits as f64 / n as f64,
        random_baseline,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike::{burel, BurelConfig};
    use betalike_microdata::census::{self, CensusConfig};

    #[test]
    fn random_baseline_formula() {
        // Two ECs: one pure (baseline 1), one uniform over 2 values
        // (baseline ½): overall (2·1 + 2·0.5)/4 = 0.75.
        use betalike_microdata::synthetic::{random_table, SyntheticConfig};
        let t = random_table(&SyntheticConfig {
            rows: 4,
            sa_cardinality: 2,
            seed: 0,
            ..Default::default()
        });
        // Construct the SA layout we need by picking rows accordingly: use
        // whatever values exist; the formula only needs the per-EC
        // distributions, so compute the expectation independently.
        let p = Partition::new(vec![0], 2, vec![vec![0, 1], vec![2, 3]]);
        let out = definetti_attack(&t, &p, &DefinettiConfig::default());
        let expected: f64 = p
            .ecs()
            .iter()
            .enumerate()
            .map(|(i, ec)| {
                let q = p.ec_distribution(&t, i);
                ec.len() as f64 / 4.0 * q.freqs().iter().map(|&f| f * f).sum::<f64>()
            })
            .sum();
        assert!((out.random_baseline - expected).abs() < 1e-12);
    }

    #[test]
    fn attack_beats_random_on_leaky_publication() {
        // Correlated CENSUS data published with large, heterogeneous ECs by
        // QI locality (NOT β-likeness-compliant): a grouping by age bands
        // leaves strong local signal for the matcher.
        let t = census::generate(&CensusConfig::new(3_000, 10));
        let mut by_age: Vec<Vec<usize>> = vec![Vec::new(); 10];
        for r in 0..t.num_rows() {
            by_age[(t.value(r, 0) / 8).min(9) as usize].push(r);
        }
        by_age.retain(|g| !g.is_empty());
        let p = Partition::new(vec![0, 2], 5, by_age);
        let out = definetti_attack(&t, &p, &DefinettiConfig::default());
        assert!(
            out.accuracy > out.random_baseline,
            "attack {} must beat random {}",
            out.accuracy,
            out.random_baseline
        );
    }

    #[test]
    fn beta_likeness_limits_the_edge() {
        // On BUREL output the local distributions are pinned near the
        // global one; the attack's edge over random matching must be small.
        let t = census::generate(&CensusConfig::new(3_000, 10));
        let p = burel(&t, &[0, 2], 5, &BurelConfig::new(2.0)).unwrap();
        let out = definetti_attack(&t, &p, &DefinettiConfig::default());
        assert!(
            out.accuracy < out.random_baseline + 0.05,
            "edge too large: {} vs {}",
            out.accuracy,
            out.random_baseline
        );
    }

    #[test]
    fn converges_and_is_deterministic() {
        let t = census::generate(&CensusConfig::new(500, 11));
        let p = burel(&t, &[0, 2], 5, &BurelConfig::new(3.0)).unwrap();
        let cfg = DefinettiConfig::default();
        let a = definetti_attack(&t, &p, &cfg);
        let b = definetti_attack(&t, &p, &cfg);
        assert_eq!(a, b);
        assert!(a.iterations <= cfg.max_iters);
    }
}

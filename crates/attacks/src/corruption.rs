//! The corruption attack (Tao et al., ICDE 2008; Section 7 of the paper).
//!
//! The adversary already knows the SA values of some individuals (the
//! *corrupted* tuples) and exploits the publication to sharpen her belief
//! about a victim:
//!
//! * Against a **generalized** release, corrupted tuples inside the
//!   victim's EC can be subtracted from its published SA multiset — with
//!   `|G| − 1` corruptions the victim's value is pinned exactly. Section 7
//!   concedes generalization is exposed to this.
//! * Against the **perturbation** release, every tuple's SA value is
//!   randomized independently, so knowledge of other individuals' true
//!   values tells the adversary nothing new about the victim's randomized
//!   output: the posterior is exactly the no-corruption posterior.
//!   Section 7 claims immunity; [`corruption_attack_perturbed`] verifies it
//!   numerically.
//!
//! [`corruption_attack_generalized`] measures, for a given corruption rate,
//! the adversary's expected confidence in the victim's true value after
//! subtracting corrupted co-members, averaged over victims — compare it to
//! the β-likeness cap that holds at corruption rate 0.

use betalike::perturb::PerturbedTable;
use betalike_metrics::Partition;
use betalike_microdata::Table;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Outcome of a corruption attack against a generalized publication.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionOutcome {
    /// Fraction of tuples the adversary knows a priori.
    pub corruption_rate: f64,
    /// Mean adversarial confidence in the (uncorrupted) victims' true
    /// values after subtracting corrupted co-members.
    pub mean_confidence: f64,
    /// Fraction of victims whose value is pinned exactly (confidence 1).
    pub pinned_fraction: f64,
    /// Number of victims evaluated.
    pub victims: usize,
}

/// Simulates the attack against a generalized release: a random
/// `corruption_rate` fraction of tuples is revealed to the adversary; for
/// every remaining tuple, her confidence in its true value is the value's
/// residual frequency within the EC after removing corrupted co-members.
///
/// # Panics
///
/// Panics unless `corruption_rate ∈ [0, 1)`.
pub fn corruption_attack_generalized(
    table: &Table,
    partition: &Partition,
    corruption_rate: f64,
    seed: u64,
) -> CorruptionOutcome {
    assert!(
        (0.0..1.0).contains(&corruption_rate),
        "corruption rate must be in [0, 1)"
    );
    let n = table.num_rows();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let corrupted_count = (n as f64 * corruption_rate).round() as usize;
    let mut corrupted = vec![false; n];
    for &r in order.iter().take(corrupted_count) {
        corrupted[r] = true;
    }

    let sa = partition.sa();
    let m = table.schema().attr(sa).cardinality();
    let col = table.column(sa);
    let mut sum_conf = 0.0;
    let mut pinned = 0usize;
    let mut victims = 0usize;
    let mut residual = vec![0u64; m];
    for ec in partition.ecs() {
        residual.fill(0);
        let mut remaining = 0u64;
        for &r in ec {
            if !corrupted[r] {
                residual[col[r] as usize] += 1;
                remaining += 1;
            }
        }
        if remaining == 0 {
            continue;
        }
        for &r in ec {
            if corrupted[r] {
                continue;
            }
            let conf = residual[col[r] as usize] as f64 / remaining as f64;
            sum_conf += conf;
            if remaining == 1 || residual[col[r] as usize] == remaining {
                pinned += 1;
            }
            victims += 1;
        }
    }
    CorruptionOutcome {
        corruption_rate,
        mean_confidence: if victims > 0 {
            sum_conf / victims as f64
        } else {
            0.0
        },
        pinned_fraction: if victims > 0 {
            pinned as f64 / victims as f64
        } else {
            0.0
        },
        victims,
    }
}

/// Verifies the Section 7 immunity claim for the perturbation scheme: the
/// adversary's posterior about a victim, given the victim's *observed*
/// (randomized) value, is unchanged by learning other individuals' true
/// values — because randomizations are independent, the corrupted tuples do
/// not enter the victim's likelihood at all.
///
/// Returns the maximum absolute difference between the with-corruption and
/// without-corruption posteriors across all victims and values — which is
/// identically 0 by construction; the function exists to make the claim
/// executable and to document *why* (see the body).
pub fn corruption_attack_perturbed(published: &PerturbedTable) -> f64 {
    // Posterior about victim v given observed value o:
    //   C(U_v = u | V_v = o, {U_w = known}_w≠v)
    //     = p_u·Pr(u → o) / Σ_j p_j·Pr(j → o)
    // The corrupted tuples' terms factor out of numerator and denominator
    // because each tuple's randomization is an independent event — exactly
    // the independence Section 7 invokes. Numerically: the posterior matrix
    // is a function of the plan alone, so the difference is zero.
    let plan = &published.plan;
    let m = plan.m();
    let mut max_diff: f64 = 0.0;
    for o in 0..m {
        let norm: f64 = (0..m)
            .map(|j| plan.priors()[j] * plan.transition(j, o))
            .sum();
        for u in 0..m {
            let without = plan.priors()[u] * plan.transition(u, o) / norm;
            // "With corruption": recompute the same quantity after
            // conditioning on any set of other tuples — the likelihood
            // terms cancel, leaving the identical expression.
            let with = plan.priors()[u] * plan.transition(u, o) / norm;
            max_diff = max_diff.max((with - without).abs());
        }
    }
    max_diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike::model::BetaLikeness;
    use betalike::{burel, perturb, BurelConfig};
    use betalike_microdata::census::{self, CensusConfig};

    fn setup() -> (Table, Partition) {
        let t = census::generate(&CensusConfig::new(5_000, 13));
        let p = burel(&t, &[0, 1, 2], 5, &BurelConfig::new(2.0)).unwrap();
        (t, p)
    }

    #[test]
    fn zero_corruption_matches_ec_frequencies() {
        let (t, p) = setup();
        let out = corruption_attack_generalized(&t, &p, 0.0, 1);
        assert_eq!(out.victims, t.num_rows());
        // Mean confidence equals the mean in-EC own-value frequency, which
        // for β = 2 publications is well below 1.
        assert!(out.mean_confidence < 0.3, "{}", out.mean_confidence);
        assert!(out.pinned_fraction < 0.01);
    }

    #[test]
    fn corruption_sharpens_generalized_confidence() {
        let (t, p) = setup();
        let low = corruption_attack_generalized(&t, &p, 0.0, 1);
        let mid = corruption_attack_generalized(&t, &p, 0.5, 1);
        let high = corruption_attack_generalized(&t, &p, 0.98, 1);
        assert!(
            low.mean_confidence < mid.mean_confidence && mid.mean_confidence < high.mean_confidence,
            "confidence must grow with corruption: {} {} {}",
            low.mean_confidence,
            mid.mean_confidence,
            high.mean_confidence
        );
        assert!(high.pinned_fraction > low.pinned_fraction);
    }

    #[test]
    fn perturbation_is_immune() {
        let t = census::generate(&CensusConfig::new(5_000, 13));
        let model = BetaLikeness::new(2.0).unwrap();
        let published = perturb(&t, 5, &model, 7).unwrap();
        assert_eq!(corruption_attack_perturbed(&published), 0.0);
    }

    #[test]
    #[should_panic(expected = "corruption rate")]
    fn rejects_full_corruption() {
        let (t, p) = setup();
        corruption_attack_generalized(&t, &p, 1.0, 1);
    }
}

//! The skewness and similarity attacks of Section 2.
//!
//! Both target distribution-oblivious models (k-anonymity, ℓ-diversity):
//!
//! * **Skewness**: an EC whose SA distribution is far more concentrated on
//!   a sensitive value than the table's — e.g. the paper's 10-diverse EC
//!   holding HIV at 10% when the table frequency is 0.1%, a 100-fold
//!   confidence gain.
//! * **Similarity**: an EC whose SA values are distinct but semantically
//!   close — e.g. all nervous diseases — leaking the category even though
//!   ℓ-diversity holds.

use betalike_metrics::Partition;
use betalike_microdata::{Hierarchy, SaDistribution, Table};

/// The multiplicative confidence gain an adversary obtains on `value` from
/// seeing an EC: `q_v / p_v` (the skewness-attack measure; the paper's HIV
/// example yields 100).
///
/// Returns `+∞` if the value is absent from the table but present in the
/// EC, and 0 if absent from the EC.
pub fn skewness_gain(table_dist: &SaDistribution, ec_dist: &SaDistribution, value: u32) -> f64 {
    let p = table_dist.freq(value);
    let q = ec_dist.freq(value);
    if q == 0.0 {
        0.0
    } else if p == 0.0 {
        f64::INFINITY
    } else {
        q / p
    }
}

/// Detects similarity leaks: ECs whose SA values all fall under a single
/// *proper* (non-root) subtree of the SA hierarchy. Returns the indices of
/// leaking ECs together with the node label they leak.
///
/// Per the paper's example, the EC {headache, epilepsy, brain tumors} leaks
/// "nervous diseases" despite being 3-diverse.
pub fn similarity_leaks<'h>(
    table: &Table,
    partition: &Partition,
    hierarchy: &'h Hierarchy,
) -> Vec<(usize, &'h str)> {
    let mut leaks = Vec::new();
    for (i, _) in partition.ecs().iter().enumerate() {
        let Some((lo, hi)) = table.code_extent(partition.sa(), &partition.ecs()[i]) else {
            continue;
        };
        let lca = hierarchy.lca_of_leaves(lo, hi);
        if lca != hierarchy.root() {
            leaks.push((i, hierarchy.label(lca)));
        }
    }
    leaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::patients::{self, disease_hierarchy, patients_table};

    #[test]
    fn paper_hiv_example() {
        // Table: 0.1% HIV; EC: 10% HIV -> gain 100.
        let table = SaDistribution::from_counts(vec![1, 999]);
        let ec = SaDistribution::from_counts(vec![1, 9]);
        let gain = skewness_gain(&table, &ec, 0);
        assert!((gain - 100.0).abs() < 1e-9);
        // Value absent from the EC: no gain.
        let clean = SaDistribution::from_counts(vec![0, 10]);
        assert_eq!(skewness_gain(&table, &clean, 0), 0.0);
    }

    #[test]
    fn off_support_gain_is_infinite() {
        let table = SaDistribution::from_counts(vec![0, 10]);
        let ec = SaDistribution::from_counts(vec![1, 1]);
        assert_eq!(skewness_gain(&table, &ec, 0), f64::INFINITY);
    }

    #[test]
    fn similarity_attack_on_table1() {
        // The Section 2 example: G1 = three nervous diseases leaks the
        // category; G2 = three circulatory diseases leaks too.
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT, patients::attr::AGE],
            patients::attr::DISEASE,
            vec![vec![0, 1, 2], vec![3, 4, 5]],
        );
        let h = disease_hierarchy();
        let leaks = similarity_leaks(&t, &p, &h);
        assert_eq!(leaks.len(), 2);
        assert_eq!(leaks[0].1, "nervous diseases");
        assert_eq!(leaks[1].1, "circulatory diseases");
    }

    #[test]
    fn mixed_ecs_do_not_leak() {
        // Mixing nervous and circulatory diseases per EC reaches the root:
        // no categorical leak.
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT],
            patients::attr::DISEASE,
            vec![vec![0, 3], vec![1, 4], vec![2, 5]],
        );
        let h = disease_hierarchy();
        assert!(similarity_leaks(&t, &p, &h).is_empty());
    }

    #[test]
    fn singleton_ec_leaks_its_leaf() {
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::WEIGHT],
            patients::attr::DISEASE,
            vec![vec![0], vec![1, 2, 3, 4, 5]],
        );
        let h = disease_hierarchy();
        let leaks = similarity_leaks(&t, &p, &h);
        // The singleton leaks the exact disease (a leaf node).
        assert!(leaks
            .iter()
            .any(|&(ec, label)| ec == 0 && label == "headache"));
    }
}

//! # betalike-attacks
//!
//! Attack simulations from Sections 2 and 7 of the paper, used to
//! demonstrate that β-likeness curbs them:
//!
//! * [`naive_bayes`] — the Naïve-Bayes attack of Section 7 (Equations
//!   15–17): learn `Pr[t_j | v_i]` from the published ECs and predict each
//!   individual's SA value. Under β-likeness the learned conditionals are
//!   pinned to within `(1 + min{β, −ln p_i})` of the unconditional
//!   `Pr[t_j]`, so the classifier collapses to predicting the most frequent
//!   value.
//! * [`definetti`] — a simplified deFinetti attack (Kifer, SIGMOD 2009):
//!   iteratively re-matching SA values to tuples inside each EC with a
//!   classifier trained on the current matching.
//! * [`skewness`] — the skewness and similarity attacks of Section 2
//!   against ℓ-diversity-style publications.
//! * [`corruption`] — the corruption attack of Tao et al. (Section 7):
//!   generalization is exposed, the perturbation scheme provably immune.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod corruption;
pub mod definetti;
pub mod naive_bayes;
pub mod skewness;

pub use corruption::{
    corruption_attack_generalized, corruption_attack_perturbed, CorruptionOutcome,
};
pub use definetti::{definetti_attack, DefinettiConfig, DefinettiOutcome};
pub use naive_bayes::{naive_bayes_attack, NaiveBayesOutcome};
pub use skewness::{similarity_leaks, skewness_gain};

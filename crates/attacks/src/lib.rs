//! # betalike-attacks
//!
//! Attack simulations from Sections 2 and 7 of the paper, used to
//! demonstrate that β-likeness curbs them:
//!
//! * [`naive_bayes`] — the Naïve-Bayes attack of Section 7 (Equations
//!   15–17): learn `Pr[t_j | v_i]` from the published ECs and predict each
//!   individual's SA value. Under β-likeness the learned conditionals are
//!   pinned to within `(1 + min{β, −ln p_i})` of the unconditional
//!   `Pr[t_j]`, so the classifier collapses to predicting the most frequent
//!   value.
//! * [`definetti`] — a simplified deFinetti attack (Kifer, SIGMOD 2009):
//!   iteratively re-matching SA values to tuples inside each EC with a
//!   classifier trained on the current matching.
//! * [`skewness`] — the skewness and similarity attacks of Section 2
//!   against ℓ-diversity-style publications.
//! * [`corruption`] — the corruption attack of Tao et al. (Section 7):
//!   generalization is exposed, the perturbation scheme provably immune.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod corruption;
pub mod definetti;
pub mod naive_bayes;
pub mod skewness;

pub use corruption::{
    corruption_attack_generalized, corruption_attack_perturbed, CorruptionOutcome,
};
pub use definetti::{definetti_attack, DefinettiConfig, DefinettiOutcome};
pub use naive_bayes::{naive_bayes_attack, NaiveBayesOutcome};
pub use skewness::{similarity_leaks, skewness_gain};

/// The adversary roster — one variant per attack this crate implements.
///
/// Battery runners (the `betalike-conformance` crate) `match` over
/// [`AttackKind::ALL`], so adding an attack here without teaching every
/// battery about it is a *compile* error, not a silently narrower audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// The Naïve-Bayes attack of Section 7 ([`naive_bayes_attack`]).
    NaiveBayes,
    /// The simplified deFinetti attack ([`definetti_attack`]).
    Definetti,
    /// The skewness/similarity attacks of Section 2 ([`skewness_gain`],
    /// [`similarity_leaks`]).
    Skewness,
    /// The corruption attack of Tao et al.
    /// ([`corruption_attack_generalized`], [`corruption_attack_perturbed`]).
    Corruption,
}

impl AttackKind {
    /// Every attack in the roster, in documentation order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::NaiveBayes,
        AttackKind::Definetti,
        AttackKind::Skewness,
        AttackKind::Corruption,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::NaiveBayes => "naive_bayes",
            AttackKind::Definetti => "definetti",
            AttackKind::Skewness => "skewness",
            AttackKind::Corruption => "corruption",
        }
    }

    /// Whether the attack applies to generalization-based publications.
    pub fn applies_to_generalized(self) -> bool {
        true
    }

    /// Whether the attack applies to the perturbation scheme (only the
    /// corruption attack has a perturbation-side claim — the Section 7
    /// immunity argument).
    pub fn applies_to_perturbed(self) -> bool {
        matches!(self, AttackKind::Corruption)
    }
}

#[cfg(test)]
mod roster_tests {
    use super::AttackKind;

    #[test]
    fn roster_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            AttackKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), AttackKind::ALL.len());
        assert!(AttackKind::ALL.iter().all(|k| k.applies_to_generalized()));
        assert_eq!(
            AttackKind::ALL
                .iter()
                .filter(|k| k.applies_to_perturbed())
                .count(),
            1
        );
    }
}

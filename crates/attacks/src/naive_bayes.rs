//! The Naïve-Bayes attack of Section 7.
//!
//! The attacker knows each victim's QI values `t_1 … t_λ` and the published
//! generalized table. She estimates the class-conditional probabilities
//! from the publication (Equation 17):
//!
//! ```text
//! Pr[t_j | v_i] = Σ_{ECs G whose box contains t_j} q_i^G · |G|
//!                 ─────────────────────────────────────────────
//!                              p_i · |DB|
//! ```
//!
//! and predicts `v̂(t) = argmax_i Pr[v_i] Π_j Pr[t_j | v_i]` (Equation 15).
//!
//! Section 7 proves `Pr[t_j | v_i] ≤ (1 + min{β, −ln p_i}) · Pr[t_j]` for
//! any β-likeness publication, so the attack's accuracy stays close to the
//! frequency of the most frequent SA value — which is what
//! [`naive_bayes_attack`] measures.

use betalike_metrics::Partition;
use betalike_microdata::{AttrKind, Table};

/// Result of running the attack against a publication.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesOutcome {
    /// Fraction of tuples whose SA value the classifier predicted exactly.
    pub accuracy: f64,
    /// Frequency of the most frequent SA value — the trivial baseline the
    /// attack should collapse to under β-likeness.
    pub majority_freq: f64,
    /// Number of tuples classified.
    pub tuples: usize,
}

/// What one EC contributes to the learned conditionals: per-value masses
/// `q_i · |G|` and the published (hierarchy-clipped) box per QI dimension.
struct EcEvidence {
    masses: Vec<f64>,
    ranges: Vec<(u32, u32)>,
}

/// Row-chunk granularity of the parallel classification sweep.
const CLASSIFY_CHUNK: usize = 2_048;

/// Runs the attack: learns per-attribute conditionals from the published
/// ECs (using each EC's *published* box — numeric extents, categorical LCA
/// ranges) and classifies every tuple by its exact QI values.
///
/// The three phases parallelize over the [`mini_rayon`] pool without
/// changing any floating-point result: per-EC evidence is pure, each QI
/// dimension's conditional table accumulates ECs in ascending order (the
/// same per-slot addition sequence as a serial sweep), and the final
/// classification is an integer hit count over independent rows.
///
/// # Panics
///
/// Panics if the partition does not belong to `table` (row ids out of
/// range).
pub fn naive_bayes_attack(table: &Table, partition: &Partition) -> NaiveBayesOutcome {
    let sa = partition.sa();
    let qi = partition.qi();
    let m = table.schema().attr(sa).cardinality();
    let p = table.sa_distribution(sa);
    let n = table.num_rows() as f64;

    // Per-EC evidence (Σ q_i |G| masses and clipped boxes), in parallel.
    let ec_indices: Vec<usize> = (0..partition.num_ecs()).collect();
    let evidence: Vec<EcEvidence> = mini_rayon::par_map(&ec_indices, |&ec_idx| {
        let q = partition.ec_distribution(table, ec_idx);
        let masses: Vec<f64> = q.counts().iter().map(|&c| c as f64).collect();
        let extent = partition.ec_extent(table, ec_idx);
        let ranges = qi
            .iter()
            .zip(&extent)
            .map(|(&a, &(lo, hi))| match table.schema().attr(a).kind() {
                AttrKind::Numeric { .. } => (lo, hi),
                AttrKind::Categorical { hierarchy } => {
                    hierarchy.leaf_range(hierarchy.lca_of_leaves(lo, hi))
                }
            })
            .collect();
        EcEvidence { masses, ranges }
    });

    // cond[dim][value * m + i] accumulates Σ q_i |G| over ECs whose
    // published box on QI dimension `dim` contains `value`. Dimensions are
    // independent, so each builds its table on its own worker.
    let dims: Vec<usize> = (0..qi.len()).collect();
    let cond: Vec<Vec<f64>> = mini_rayon::par_map(&dims, |&dim| {
        let mut table_dim = vec![0.0; table.schema().attr(qi[dim]).cardinality() * m];
        for ec in &evidence {
            let (blo, bhi) = ec.ranges[dim];
            for value in blo..=bhi {
                let base = value as usize * m;
                for (i, &mass) in ec.masses.iter().enumerate() {
                    if mass > 0.0 {
                        table_dim[base + i] += mass;
                    }
                }
            }
        }
        table_dim
    });

    // Classify every tuple: argmax_i p_i Π_j Pr[t_j | v_i]; work in
    // log-space for numerical robustness. Values with p_i = 0 are skipped.
    // Rows are independent; each chunk reuses one score scratch buffer and
    // contributes an exact integer count.
    let majority = p
        .freqs()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty domain");
    let sa_col = table.column(sa);
    let chunk_hits = mini_rayon::par_chunks_map(sa_col, CLASSIFY_CHUNK, |c, chunk| {
        let base_row = c * CLASSIFY_CHUNK;
        let mut scores = vec![0.0f64; m];
        let mut hits = 0usize;
        for (off, &true_value) in chunk.iter().enumerate() {
            let r = base_row + off;
            for (score, &pf) in scores.iter_mut().zip(p.freqs()) {
                *score = if pf > 0.0 { pf.ln() } else { f64::NEG_INFINITY };
            }
            for (dim, &a) in qi.iter().enumerate() {
                let value = table.value(r, a) as usize;
                let base = value * m;
                for (i, score) in scores.iter_mut().enumerate() {
                    if score.is_finite() {
                        let pr = cond[dim][base + i] / (p.freqs()[i] * n);
                        *score += if pr > 0.0 { pr.ln() } else { f64::NEG_INFINITY };
                    }
                }
            }
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty domain");
            let prediction = if scores[best].is_finite() {
                best
            } else {
                majority
            };
            if prediction == true_value as usize {
                hits += 1;
            }
        }
        hits
    });
    let hits: usize = chunk_hits.iter().sum();

    NaiveBayesOutcome {
        accuracy: hits as f64 / n,
        majority_freq: p.max_freq(),
        tuples: table.num_rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike::{burel, BurelConfig};
    use betalike_microdata::census::{self, CensusConfig};
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    #[test]
    fn attack_on_point_ecs_learns_correlations() {
        // Single-tuple ECs publish everything: on strongly correlated data
        // the classifier should far exceed the majority baseline.
        let t = census::generate(&CensusConfig::new(4_000, 5));
        let ecs: Vec<Vec<usize>> = (0..t.num_rows()).map(|r| vec![r]).collect();
        let p = Partition::new(vec![0, 1, 2], 5, ecs);
        let out = naive_bayes_attack(&t, &p);
        assert!(
            out.accuracy > 2.0 * out.majority_freq,
            "point ECs must leak: accuracy {} vs majority {}",
            out.accuracy,
            out.majority_freq
        );
    }

    #[test]
    fn attack_on_single_ec_matches_majority() {
        // One EC covering the table carries zero conditional signal: the
        // attack degenerates to always predicting the most frequent value.
        let t = census::generate(&CensusConfig::new(3_000, 6));
        let p = Partition::new(vec![0, 1, 2], 5, vec![(0..t.num_rows()).collect()]);
        let out = naive_bayes_attack(&t, &p);
        assert!(
            (out.accuracy - out.majority_freq).abs() < 0.01,
            "no-signal accuracy {} vs majority {}",
            out.accuracy,
            out.majority_freq
        );
    }

    #[test]
    fn beta_likeness_curbs_the_attack() {
        // The Section 7 experiment: on BUREL output the success rate stays
        // "remarkably close to the frequency of the most frequent SA value".
        let t = census::generate(&CensusConfig::new(8_000, 7));
        let published = burel(&t, &[0, 1, 2], 5, &BurelConfig::new(4.0)).unwrap();
        let out = naive_bayes_attack(&t, &published);
        assert!(
            out.accuracy < 2.0 * out.majority_freq,
            "beta-likeness must curb NB: accuracy {} vs majority {}",
            out.accuracy,
            out.majority_freq
        );
        // And far below the point-EC leak measured above.
        assert!(out.accuracy < 0.15);
    }

    #[test]
    fn attack_is_thread_count_invariant() {
        let t = census::generate(&CensusConfig::new(3_000, 9));
        let p = burel(&t, &[0, 1, 2], 5, &BurelConfig::new(3.0)).unwrap();
        mini_rayon::set_threads(1);
        let serial = naive_bayes_attack(&t, &p);
        mini_rayon::set_threads(8);
        let parallel = naive_bayes_attack(&t, &p);
        mini_rayon::set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn uncorrelated_data_gives_majority_accuracy() {
        let t = random_table(&SyntheticConfig {
            rows: 5_000,
            qi_attrs: 2,
            sa_cardinality: 8,
            seed: 8,
            ..Default::default()
        });
        let ecs: Vec<Vec<usize>> = (0..t.num_rows()).map(|r| vec![r]).collect();
        let p = Partition::new(vec![0, 1], 2, ecs);
        let out = naive_bayes_attack(&t, &p);
        // QI ⟂ SA: even full disclosure of the QI/SA pairs cannot beat the
        // prior by much (overfitting noise allows a few points).
        assert!(out.accuracy < out.majority_freq + 0.1);
    }
}

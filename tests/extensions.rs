//! Integration tests for the Section 7 extension features and the release
//! tooling: grouped β-likeness, the two-sided model, schema descriptors,
//! generalized CSV rendering, and the `PM` publication bundle.

use betalike::grouped::SaGrouping;
use betalike::model::BetaLikeness;
use betalike::perturb::{perturb, PlanRelease};
use betalike::{burel, burel_grouped, verify_grouped, verify_two_sided, BurelConfig};
use betalike_metrics::export::write_generalized_csv;
use betalike_microdata::census::{self, attr, CensusConfig};
use betalike_microdata::io::read_csv;
use betalike_microdata::{SaDistribution, SchemaSpec};

#[test]
fn grouped_likeness_on_census_work_class() {
    // Treat the *work class* as the SA and demand grouped β-likeness at the
    // sector level (depth 1 of its height-3 hierarchy): no EC may
    // over-represent "employed" / "self-employed" / "not working" beyond
    // the relative-gain bound, regardless of the leaf mix.
    let table = census::generate(&CensusConfig::new(8_000, 55));
    let sa = attr::WORK_CLASS;
    let qi = [attr::AGE, attr::EDUCATION];
    let cfg = BurelConfig::new(1.5);
    let published = burel_grouped(&table, &qi, sa, &cfg, 1).unwrap();
    published.validate_cover(table.num_rows()).unwrap();

    let hierarchy = table.schema().attr(sa).hierarchy().unwrap();
    let grouping = SaGrouping::at_depth(hierarchy, 1);
    assert_eq!(grouping.num_groups(), 3);
    let model = BetaLikeness::new(1.5).unwrap();
    verify_grouped(&table, &published, &model, &grouping).unwrap();

    // The plain (leaf-level) guarantee is *not* implied by the grouped one;
    // the publication still must cap each *group's* share.
    let table_grouped = grouping.grouped_distribution(&table.sa_distribution(sa));
    for i in 0..published.num_ecs() {
        let ec_grouped = grouping.grouped_distribution(&published.ec_distribution(&table, i));
        for (g, (&p, &q)) in table_grouped
            .freqs()
            .iter()
            .zip(ec_grouped.freqs())
            .enumerate()
        {
            assert!(
                q <= model.max_ec_freq(p) + 1e-9,
                "EC {i} group {g}: {q} > cap of {p}"
            );
        }
    }
}

#[test]
fn two_sided_verification_is_strictly_stronger() {
    let table = census::generate(&CensusConfig::new(6_000, 56));
    let qi = [attr::AGE, attr::GENDER, attr::EDUCATION];
    let published = burel(&table, &qi, attr::SALARY, &BurelConfig::new(2.0)).unwrap();
    let model = BetaLikeness::new(2.0).unwrap();
    // One-sided always holds for BUREL output...
    betalike::verify(&table, &published, &model).unwrap();
    // ...two-sided generally does not (BUREL only enforces the cap); the
    // check must come back with a floor violation, not a cap violation.
    match verify_two_sided(&table, &published, &model) {
        Ok(()) => {} // possible in principle, but
        Err(betalike::Error::Violation(v)) => {
            assert!(
                v.ec_freq < v.bound,
                "two-sided failures on BUREL output are floor violations"
            );
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn release_bundle_supports_recipient_side_reconstruction() {
    // Full recipient workflow: parse the plan JSON, rebuild the matrix,
    // reconstruct counts from observed ones — without touching the
    // producer's in-memory plan.
    let table = census::generate(&CensusConfig::new(30_000, 57));
    let model = BetaLikeness::new(4.0).unwrap();
    let published = perturb(&table, attr::SALARY, &model, 3).unwrap();
    let json = PlanRelease::from_plan(&published.plan).to_json();

    let recipient = PlanRelease::from_json(&json).unwrap();
    let matrix = recipient.matrix().unwrap();
    let rows: Vec<usize> = (0..table.num_rows()).collect();
    let observed = published.observed_counts(&rows);
    let recon = matrix.solve(&observed).unwrap();
    // Mass conservation, and agreement with the producer-side path.
    assert!((recon.iter().sum::<f64>() - table.num_rows() as f64).abs() < 1e-6);
    let producer = published.reconstruct_counts(&rows).unwrap();
    for (a, b) in recon.iter().zip(&producer) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn generalized_csv_release_is_self_auditable() {
    // Render a release, then re-derive the per-EC SA distributions from the
    // CSV text alone and re-check β-likeness — the `audit` binary's logic.
    let table = census::generate(&CensusConfig::new(4_000, 58));
    let qi = [attr::AGE, attr::GENDER];
    let beta = 2.0;
    let published = burel(&table, &qi, attr::SALARY, &BurelConfig::new(beta)).unwrap();
    let mut buf = Vec::new();
    write_generalized_csv(&table, &published, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let sa_attr = table.schema().attr(attr::SALARY);
    let m = sa_attr.cardinality();
    let mut per_ec: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
    let mut all = Vec::new();
    for line in text.lines().skip(1) {
        let ec: u64 = line.split(',').next().unwrap().parse().unwrap();
        let label = line.rsplit(',').next().unwrap();
        let code = sa_attr.code_of(label).unwrap();
        per_ec.entry(ec).or_default().push(code);
        all.push(code);
    }
    assert_eq!(all.len(), table.num_rows());
    let p = SaDistribution::from_codes(&all, m);
    let model = BetaLikeness::new(beta).unwrap();
    for codes in per_ec.values() {
        let q = SaDistribution::from_codes(codes, m);
        assert!(model.satisfies(&p, &q), "release fails its own audit");
    }
}

#[test]
fn schema_descriptor_roundtrips_through_csv_io() {
    // Schema JSON -> runtime schema -> CSV write -> CSV read: the path the
    // `anonymize` CLI exercises.
    let table = census::generate(&CensusConfig::new(500, 59));
    let spec = SchemaSpec::from_schema(table.schema());
    let rebuilt = SchemaSpec::from_json(&spec.to_json())
        .unwrap()
        .to_schema()
        .unwrap();
    let mut buf = Vec::new();
    betalike_microdata::io::write_csv(&table, &mut buf).unwrap();
    let back = read_csv(rebuilt, buf.as_slice()).unwrap();
    assert_eq!(back.num_rows(), table.num_rows());
    for r in (0..table.num_rows()).step_by(97) {
        assert_eq!(back.decode_row(r), table.decode_row(r));
    }
}

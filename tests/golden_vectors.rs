//! Golden-vector regression suite: small canonical artifacts committed
//! under `tests/golden/`, byte-for-byte. A pipeline change that silently
//! alters *any* published output — EC row lists, the perturbed column, a
//! single audit float, the storage format itself — fails here, because the
//! freshly published artifact no longer serializes to the committed bytes.
//!
//! The goldens also pass the independent conformance oracle on every run,
//! and `tests/golden/expected.json` pins the audit numbers in
//! human-reviewable form (exact f64 bits as hex next to their decimal
//! rendering).
//!
//! To regenerate after a *deliberate* output change:
//!
//! ```text
//! BETALIKE_REGEN_GOLDEN=1 cargo test -p betalike-bench --test golden_vectors \
//!     -- --ignored regen_golden
//! ```
//!
//! and review the resulting diff like any other behavioural change.

use betalike_conformance::verify_snapshot;
use betalike_microdata::json::Json;
use betalike_server::artifact::Artifact;
use betalike_server::{Algo, DatasetSpec, PublishRequest, Registry};
use betalike_store::{publication_from_slice, publication_to_vec, PublicationSnapshot};
use std::path::PathBuf;

const ROWS: usize = 400;
const SEED: u64 = 17;

const ALGOS: [Algo; 5] = [
    Algo::Burel,
    Algo::Sabre,
    Algo::Mondrian,
    Algo::Anatomy,
    Algo::Perturb,
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn golden_path(algo: Algo) -> PathBuf {
    golden_dir().join(format!("census-{ROWS}-{SEED}.{}.bpub", algo.as_str()))
}

fn request(algo: Algo) -> PublishRequest {
    PublishRequest::new(
        DatasetSpec::Census {
            rows: ROWS,
            seed: SEED,
        },
        algo,
    )
}

/// Publishes one golden artifact through the real pipeline and captures it
/// exactly the way the durable store would.
fn publish(algo: Algo, registry: &Registry) -> PublicationSnapshot {
    let artifact = Artifact::publish(registry, &request(algo)).expect("golden publish");
    betalike_server::persist::snapshot(&artifact)
}

#[test]
fn golden_artifacts_match_the_pipeline_byte_for_byte() {
    let registry = Registry::new();
    for algo in ALGOS {
        let path = golden_path(algo);
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden vector {} ({e}); regenerate with \
                 BETALIKE_REGEN_GOLDEN=1 (see the module docs)",
                path.display()
            )
        });
        let fresh = publication_to_vec(&publish(algo, &registry)).expect("serialize");
        assert_eq!(
            committed, fresh,
            "{:?}: the pipeline's published output no longer matches the committed golden \
             vector — if this change is deliberate, regenerate tests/golden/ and review the diff",
            algo
        );
    }
}

#[test]
fn golden_artifacts_pass_the_conformance_oracle() {
    for algo in ALGOS {
        let bytes = std::fs::read(golden_path(algo)).expect("golden file");
        let snap = publication_from_slice(&bytes).expect("golden decodes");
        let report = verify_snapshot(&snap);
        assert!(
            report.pass(),
            "{algo:?} golden fails the oracle: {}\n{:#?}",
            report.summary(),
            report.failures()
        );
    }
}

#[test]
fn golden_audit_numbers_match_expected_json() {
    let text = std::fs::read_to_string(golden_dir().join("expected.json")).expect("expected.json");
    let doc = Json::parse(&text).expect("expected.json parses");
    for algo in ALGOS {
        let bytes = std::fs::read(golden_path(algo)).expect("golden file");
        let snap = publication_from_slice(&bytes).expect("golden decodes");
        let entry = doc.get(algo.as_str()).expect("algo entry");
        assert_eq!(
            entry.get("handle").and_then(Json::as_str),
            Some(snap.params.handle.as_str()),
            "{algo:?} handle"
        );
        match &snap.audit {
            None => assert!(
                matches!(entry.get("audit"), Some(Json::Null)),
                "{algo:?}: expected.json must record a null audit"
            ),
            Some(audit) => {
                let expected = entry.get("audit").expect("audit entry");
                for (key, value) in [
                    ("max_beta", audit.max_beta),
                    ("avg_beta", audit.avg_beta),
                    ("max_closeness", audit.max_closeness),
                    ("avg_closeness", audit.avg_closeness),
                    ("avg_distinct_l", audit.avg_distinct_l),
                    ("min_inv_max_freq_l", audit.min_inv_max_freq_l),
                    ("max_delta", audit.max_delta),
                ] {
                    let bits = expected
                        .get(&format!("{key}_bits"))
                        .and_then(Json::as_str)
                        .unwrap_or_else(|| panic!("{algo:?}: missing {key}_bits"));
                    assert_eq!(
                        bits,
                        format!("{:016x}", value.to_bits()),
                        "{algo:?}: {key} drifted from the committed expectation ({value})"
                    );
                }
                for (key, value) in [
                    ("min_distinct_l", audit.min_distinct_l),
                    ("min_ec_size", audit.min_ec_size),
                    ("num_ecs", audit.num_ecs),
                ] {
                    assert_eq!(
                        expected.get(key).and_then(Json::as_u64),
                        Some(value as u64),
                        "{algo:?}: {key} drifted"
                    );
                }
            }
        }
    }
}

/// Writes the golden files and `expected.json`. Ignored by default; run
/// explicitly (with `BETALIKE_REGEN_GOLDEN=1`) after a deliberate change
/// to published output.
#[test]
#[ignore = "regenerates the committed golden vectors"]
fn regen_golden() {
    if std::env::var("BETALIKE_REGEN_GOLDEN").is_err() {
        panic!("set BETALIKE_REGEN_GOLDEN=1 to confirm regeneration");
    }
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    let registry = Registry::new();
    let mut entries = Vec::new();
    for algo in ALGOS {
        let snap = publish(algo, &registry);
        let bytes = publication_to_vec(&snap).expect("serialize");
        std::fs::write(golden_path(algo), &bytes).expect("write golden");
        let audit = match &snap.audit {
            None => Json::Null,
            Some(a) => {
                let mut members = Vec::new();
                for (key, value) in [
                    ("max_beta", a.max_beta),
                    ("avg_beta", a.avg_beta),
                    ("max_closeness", a.max_closeness),
                    ("avg_closeness", a.avg_closeness),
                    ("avg_distinct_l", a.avg_distinct_l),
                    ("min_inv_max_freq_l", a.min_inv_max_freq_l),
                    ("max_delta", a.max_delta),
                ] {
                    members.push((
                        format!("{key}_bits"),
                        Json::Str(format!("{:016x}", value.to_bits())),
                    ));
                    members.push((format!("{key}_approx"), Json::Str(format!("{value:.6}"))));
                }
                for (key, value) in [
                    ("min_distinct_l", a.min_distinct_l),
                    ("min_ec_size", a.min_ec_size),
                    ("num_ecs", a.num_ecs),
                ] {
                    members.push((key.to_string(), Json::Num(value as f64)));
                }
                Json::Obj(members)
            }
        };
        entries.push((
            algo.as_str().to_string(),
            Json::Obj(vec![
                ("handle".into(), Json::Str(snap.params.handle.clone())),
                ("bytes".into(), Json::Num(bytes.len() as f64)),
                ("audit".into(), audit),
            ]),
        ));
    }
    let doc = Json::Obj(entries);
    std::fs::write(dir.join("expected.json"), doc.pretty() + "\n").expect("write expected.json");
}

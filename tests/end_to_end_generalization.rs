//! End-to-end integration: CENSUS generation → BUREL → verification →
//! audit → query answering, across every crate in the workspace.

use betalike::model::{verify, BetaLikeness};
use betalike::{burel, BurelConfig};
use betalike_bench::algos::METRIC;
use betalike_metrics::audit::{achieved_beta, audit_partition};
use betalike_metrics::loss::average_information_loss;
use betalike_microdata::census::{self, attr, CensusConfig};
use betalike_query::{
    exact_count, generate_workload, median_relative_error, relative_error, GeneralizedView,
    WorkloadConfig,
};

const ROWS: usize = 20_000;
const QI: [usize; 3] = [attr::AGE, attr::GENDER, attr::EDUCATION];

fn census() -> betalike_microdata::Table {
    census::generate(&CensusConfig::new(ROWS, 4242))
}

#[test]
fn pipeline_produces_valid_guaranteed_publication() {
    let table = census();
    let beta = 3.0;
    let published = burel(&table, &QI, attr::SALARY, &BurelConfig::new(beta)).unwrap();

    // Structural validity: every row in exactly one EC.
    published.validate_cover(ROWS).unwrap();

    // The guarantee, checked against the definition.
    let model = BetaLikeness::new(beta).unwrap();
    verify(&table, &published, &model).unwrap();
    assert!(achieved_beta(&table, &published) <= beta + 1e-9);

    // The publication is an actual partition with nontrivial utility.
    assert!(published.num_ecs() > 10);
    let ail = average_information_loss(&table, &published);
    assert!(ail > 0.0 && ail < 0.9, "AIL = {ail}");
}

#[test]
fn audits_are_mutually_consistent() {
    let table = census();
    let published = burel(&table, &QI, attr::SALARY, &BurelConfig::new(2.0)).unwrap();
    let audit = audit_partition(&table, &published, METRIC);
    // avg ≤ max for every paired statistic.
    assert!(audit.avg_beta <= audit.max_beta + 1e-12);
    assert!(audit.avg_closeness <= audit.max_closeness + 1e-12);
    assert!(audit.min_distinct_l as f64 <= audit.avg_distinct_l + 1e-12);
    // The distinct-l reading can never exceed the SA domain size.
    assert!(audit.avg_distinct_l <= 50.0);
    // The incidental k-anonymity is at least 2 (singleton ECs would make a
    // single value's frequency 1, above any cap at these betas).
    assert!(audit.min_ec_size >= 2);
}

#[test]
fn published_view_answers_queries() {
    let table = census();
    let published = burel(&table, &QI, attr::SALARY, &BurelConfig::new(4.0)).unwrap();
    let view = GeneralizedView::new(&table, &published);
    let workload = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: QI.to_vec(),
            sa: attr::SALARY,
            lambda: 2,
            theta: 0.15,
            num_queries: 200,
            seed: 7,
        },
    );
    let errors = workload
        .iter()
        .map(|q| relative_error(view.estimate(q), exact_count(&table, q) as f64));
    let median = median_relative_error(errors).expect("non-degenerate workload");
    assert!(
        median < 80.0,
        "generalized answers unusable: median error {median}%"
    );
    // Estimates must conserve overall mass approximately: the full-domain
    // query is answered exactly (boxes fully covered).
    let full = betalike_query::AggQuery {
        qi_preds: vec![betalike_query::RangePred {
            attr: attr::AGE,
            lo: 0,
            hi: 78,
        }],
        sa_pred: betalike_query::RangePred {
            attr: attr::SALARY,
            lo: 0,
            hi: 49,
        },
    };
    let est = view.estimate(&full);
    assert!((est - ROWS as f64).abs() < 1e-6);
}

#[test]
fn seeds_change_tuples_not_guarantees() {
    let table = census();
    let a = burel(
        &table,
        &QI,
        attr::SALARY,
        &BurelConfig::new(2.0).with_seed(1),
    )
    .unwrap();
    let b = burel(
        &table,
        &QI,
        attr::SALARY,
        &BurelConfig::new(2.0).with_seed(2),
    )
    .unwrap();
    assert_ne!(a.ecs(), b.ecs(), "different seeds place tuples differently");
    let model = BetaLikeness::new(2.0).unwrap();
    verify(&table, &a, &model).unwrap();
    verify(&table, &b, &model).unwrap();
    // EC-size profile is identical: templates do not depend on the seed.
    let mut sa: Vec<usize> = a.ecs().iter().map(Vec::len).collect();
    let mut sb: Vec<usize> = b.ecs().iter().map(Vec::len).collect();
    sa.sort_unstable();
    sb.sort_unstable();
    assert_eq!(sa, sb);
}

#[test]
fn tighter_beta_never_relaxes_real_beta() {
    let table = census();
    let mut last = f64::INFINITY;
    for beta in [4.0, 2.0, 1.0, 0.5] {
        let p = burel(&table, &QI, attr::SALARY, &BurelConfig::new(beta)).unwrap();
        let real = achieved_beta(&table, &p);
        assert!(real <= beta + 1e-9);
        assert!(
            real <= last + 0.5,
            "real beta should broadly shrink with beta (got {real} after {last})"
        );
        last = real;
    }
}

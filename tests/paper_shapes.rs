//! Shape tests: the qualitative claims of the paper's evaluation, asserted
//! at reduced scale. The heavyweight ones are release-only (marked
//! `#[ignore]` under debug assertions) so `cargo test --workspace` stays
//! fast in debug while `cargo test --workspace --release` checks the full
//! set.

use betalike::model::BetaLikeness;
use betalike::perturb::perturb;
use betalike_attacks::naive_bayes::naive_bayes_attack;
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_bench::algos::{run_burel, run_sabre, run_tmondrian, METRIC};
use betalike_metrics::audit::{achieved_beta, achieved_closeness, audit_partition};
use betalike_metrics::loss::average_information_loss;
use betalike_microdata::census::{self, attr, CensusConfig};
use betalike_query::{
    estimate_anatomy, estimate_perturbed, exact_count, generate_workload, median_relative_error,
    relative_error, WorkloadConfig,
};

const QI: [usize; 3] = [0, 1, 2];

/// Figure 5(a): BUREL's information loss falls as β is relaxed.
#[test]
fn fig5_shape_ail_falls_with_beta() {
    let table = census::generate(&CensusConfig::new(20_000, 1));
    let tight = run_burel(&table, &QI, attr::SALARY, 1.0, 3).unwrap();
    let loose = run_burel(&table, &QI, attr::SALARY, 5.0, 3).unwrap();
    let ail_tight = average_information_loss(&table, &tight);
    let ail_loose = average_information_loss(&table, &loose);
    assert!(
        ail_loose < ail_tight,
        "AIL must fall with beta: {ail_loose} vs {ail_tight}"
    );
}

/// Figure 6(a): information loss grows with QI dimensionality.
#[test]
fn fig6_shape_ail_grows_with_qi() {
    let table = census::generate(&CensusConfig::new(20_000, 2));
    let narrow = run_burel(&table, &[0], attr::SALARY, 4.0, 3).unwrap();
    let wide = run_burel(&table, &[0, 1, 2, 3, 4], attr::SALARY, 4.0, 3).unwrap();
    let ail_narrow = average_information_loss(&table, &narrow);
    let ail_wide = average_information_loss(&table, &wide);
    assert!(
        ail_wide > ail_narrow,
        "AIL must grow with QI size: {ail_wide} vs {ail_narrow}"
    );
}

/// Figure 4(a): at matched closeness, the t-schemes' real β dwarfs BUREL's.
#[test]
fn fig4_shape_t_schemes_leak_relative_gain() {
    let table = census::generate(&CensusConfig::new(20_000, 3));
    let beta = 4.0;
    let b = run_burel(&table, &QI, attr::SALARY, beta, 3).unwrap();
    let (t_beta, _) = achieved_closeness(&table, &b, METRIC);
    let tm = run_tmondrian(&table, &QI, attr::SALARY, t_beta).unwrap();
    let sb = run_sabre(&table, &QI, attr::SALARY, t_beta, 3).unwrap();
    let real_b = achieved_beta(&table, &b);
    assert!(real_b <= beta + 1e-9);
    assert!(achieved_beta(&table, &tm) > real_b);
    assert!(achieved_beta(&table, &sb) > real_b);
}

/// Section 7 table shape: the ℓ-diversity reading of BUREL output falls as
/// β is relaxed, and the closeness reading grows.
#[test]
fn sec7_shape_l_falls_t_grows_with_beta() {
    let table = census::generate(&CensusConfig::new(20_000, 4));
    let tight = run_burel(&table, &QI, attr::SALARY, 1.0, 3).unwrap();
    let loose = run_burel(&table, &QI, attr::SALARY, 5.0, 3).unwrap();
    let a_tight = audit_partition(&table, &tight, METRIC);
    let a_loose = audit_partition(&table, &loose, METRIC);
    assert!(
        a_tight.avg_distinct_l >= a_loose.avg_distinct_l,
        "avg l: {} -> {}",
        a_tight.avg_distinct_l,
        a_loose.avg_distinct_l
    );
    assert!(
        a_tight.avg_closeness <= a_loose.avg_closeness + 1e-9,
        "avg t: {} -> {}",
        a_tight.avg_closeness,
        a_loose.avg_closeness
    );
}

/// Section 7 figure: the Naïve-Bayes attack's accuracy on BUREL output
/// stays near the majority-class frequency.
#[test]
fn nb_attack_shape_collapses_to_majority() {
    let table = census::generate(&CensusConfig::new(20_000, 5));
    let p = run_burel(&table, &QI, attr::SALARY, 4.0, 3).unwrap();
    let out = naive_bayes_attack(&table, &p);
    assert!(
        out.accuracy < 3.0 * out.majority_freq,
        "attack accuracy {} vs majority {}",
        out.accuracy,
        out.majority_freq
    );
}

/// Figure 9 shape: at full scale, the perturbation scheme beats the
/// Anatomy baseline on median relative error. Release-only: the crossover
/// needs 100K rows.
#[test]
#[cfg_attr(debug_assertions, ignore = "needs 200K rows; run under --release")]
fn fig9_shape_perturbation_beats_baseline_at_scale() {
    // Reconstruction noise shrinks as 1/sqrt(|S_t|) while the baseline's
    // correlation blindness is scale-invariant; 200K rows is safely past
    // the crossover.
    let table = census::generate(&CensusConfig::new(200_000, 6));
    let model = BetaLikeness::new(4.0).unwrap();
    let published = perturb(&table, attr::SALARY, &model, 8).unwrap();
    let baseline = AnatomyBaseline::publish(&table, attr::SALARY);
    let workload = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: vec![0, 1, 2, 3, 4],
            sa: attr::SALARY,
            lambda: 3,
            theta: 0.1,
            num_queries: 150,
            seed: 9,
        },
    );
    let mut pert = Vec::new();
    let mut base = Vec::new();
    for q in &workload {
        let exact = exact_count(&table, q) as f64;
        pert.push(relative_error(
            estimate_perturbed(&published, q).unwrap(),
            exact,
        ));
        base.push(relative_error(
            estimate_anatomy(&baseline, &table, q),
            exact,
        ));
    }
    let pm = median_relative_error(pert).unwrap();
    let bm = median_relative_error(base).unwrap();
    assert!(pm < bm, "perturbation {pm}% must beat baseline {bm}%");
}

/// Figure 9(b) shape: perturbation error falls as β is relaxed (larger
/// retention probabilities). Release-only.
#[test]
#[cfg_attr(debug_assertions, ignore = "needs 100K rows; run under --release")]
fn fig9b_shape_error_falls_with_beta() {
    let table = census::generate(&CensusConfig::new(100_000, 7));
    let workload = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: vec![0, 1, 2, 3, 4],
            sa: attr::SALARY,
            lambda: 3,
            theta: 0.1,
            num_queries: 120,
            seed: 10,
        },
    );
    let med = |beta: f64| {
        let model = BetaLikeness::new(beta).unwrap();
        let published = perturb(&table, attr::SALARY, &model, 8).unwrap();
        median_relative_error(workload.iter().map(|q| {
            relative_error(
                estimate_perturbed(&published, q).unwrap(),
                exact_count(&table, q) as f64,
            )
        }))
        .unwrap()
    };
    let tight = med(1.0);
    let loose = med(5.0);
    assert!(
        loose < tight,
        "error must fall with beta: beta=5 {loose}% vs beta=1 {tight}%"
    );
}

//! End-to-end integration for the Section 5 pipeline: CENSUS → perturbation
//! plan → randomized release → posterior bounds → count reconstruction →
//! query answering.

use betalike::model::BetaLikeness;
use betalike::perturb::{perturb, PerturbationPlan};
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_microdata::census::{self, attr, CensusConfig};
use betalike_query::{
    estimate_anatomy, estimate_perturbed, exact_count, generate_workload, median_relative_error,
    relative_error, WorkloadConfig,
};

const ROWS: usize = 20_000;

fn census() -> betalike_microdata::Table {
    census::generate(&CensusConfig::new(ROWS, 777))
}

#[test]
fn plan_satisfies_definition6_on_census() {
    let table = census();
    let dist = table.sa_distribution(attr::SALARY);
    for beta in [1.0, 2.0, 4.0] {
        let model = BetaLikeness::new(beta).unwrap();
        let plan = PerturbationPlan::new(&dist, &model).unwrap();
        let m = plan.m();
        assert_eq!(m, 50, "all salary classes have support");
        // Exact posterior check over every (true value, observed value)
        // pair — Definition 6.
        for v in 0..m {
            let seen: f64 = (0..m)
                .map(|j| plan.priors()[j] * plan.transition(j, v))
                .sum();
            for i in 0..m {
                let posterior = plan.priors()[i] * plan.transition(i, v) / seen;
                assert!(
                    posterior <= plan.caps()[i] + 1e-9,
                    "beta {beta}: posterior({i}|{v}) = {posterior} > {}",
                    plan.caps()[i]
                );
            }
        }
    }
}

#[test]
fn release_preserves_qi_and_randomizes_sa() {
    let table = census();
    let model = BetaLikeness::new(4.0).unwrap();
    let out = perturb(&table, attr::SALARY, &model, 5).unwrap();
    for a in 0..5 {
        assert_eq!(out.table.column(a), table.column(a), "QI column {a} intact");
    }
    let changed = table
        .column(attr::SALARY)
        .iter()
        .zip(out.table.column(attr::SALARY))
        .filter(|(a, b)| a != b)
        .count();
    // At beta = 4, m = 50, retention is ~7%: the vast majority of values
    // change.
    assert!(
        changed > ROWS / 2,
        "perturbation barely changed anything ({changed}/{ROWS})"
    );
}

#[test]
fn reconstruction_conserves_mass_and_tracks_ranges() {
    let table = census();
    let model = BetaLikeness::new(4.0).unwrap();
    let out = perturb(&table, attr::SALARY, &model, 5).unwrap();
    let rows: Vec<usize> = (0..ROWS).collect();
    let recon = out.reconstruct_counts(&rows).unwrap();
    // Mass conservation is exact: PM is column-stochastic.
    let total: f64 = recon.iter().sum();
    assert!((total - ROWS as f64).abs() < 1e-6);
    // Wide-range aggregates reconstruct within ~10% at this scale.
    let truth = table.sa_distribution(attr::SALARY);
    let est: f64 = (5..45).map(|i| recon[i]).sum();
    let real: f64 = (5..45u32).map(|v| truth.count(v) as f64).sum();
    let rel = (est - real).abs() / real;
    assert!(rel < 0.10, "wide-range reconstruction off by {rel}");
}

#[test]
fn workload_errors_finite_and_baseline_comparable() {
    let table = census();
    let model = BetaLikeness::new(4.0).unwrap();
    let published = perturb(&table, attr::SALARY, &model, 5).unwrap();
    let baseline = AnatomyBaseline::publish(&table, attr::SALARY);
    let workload = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: vec![0, 1, 2, 3, 4],
            sa: attr::SALARY,
            lambda: 3,
            theta: 0.15,
            num_queries: 100,
            seed: 6,
        },
    );
    let mut pert = Vec::new();
    let mut base = Vec::new();
    for q in &workload {
        let exact = exact_count(&table, q) as f64;
        pert.push(relative_error(
            estimate_perturbed(&published, q).unwrap(),
            exact,
        ));
        base.push(relative_error(
            estimate_anatomy(&baseline, &table, q),
            exact,
        ));
    }
    let pm = median_relative_error(pert).unwrap();
    let bm = median_relative_error(base).unwrap();
    assert!(pm.is_finite() && bm.is_finite());
    // At 20K rows reconstruction noise still dominates; just bound both to
    // sane magnitudes here (the scale-crossover itself is asserted in the
    // release-mode shape tests).
    assert!(pm < 100.0, "perturbation median {pm}%");
    assert!(bm < 100.0, "baseline median {bm}%");
}

#[test]
fn different_seeds_decorrelate_noise() {
    let table = census();
    let model = BetaLikeness::new(2.0).unwrap();
    let a = perturb(&table, attr::SALARY, &model, 1).unwrap();
    let b = perturb(&table, attr::SALARY, &model, 2).unwrap();
    assert_ne!(a.table.column(attr::SALARY), b.table.column(attr::SALARY));
    // Plans are identical (they depend only on the distribution).
    assert_eq!(a.plan.alphas(), b.plan.alphas());
    assert_eq!(a.plan.matrix(), b.plan.matrix());
}

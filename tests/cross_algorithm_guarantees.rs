//! Cross-algorithm integration: every anonymizer in the workspace delivers
//! the privacy model it promises, on the same data, measured by the same
//! auditors.

use betalike_bench::algos::{
    run_burel, run_dmondrian, run_lmondrian, run_sabre, run_tmondrian, METRIC,
};
use betalike_metrics::audit::{achieved_beta, achieved_closeness, audit_partition};
use betalike_microdata::census::{self, attr, CensusConfig};

const ROWS: usize = 15_000;
const QI: [usize; 3] = [0, 1, 2];

fn census() -> betalike_microdata::Table {
    census::generate(&CensusConfig::new(ROWS, 31337))
}

#[test]
fn all_beta_algorithms_deliver_beta() {
    let table = census();
    for beta in [1.0, 3.0] {
        for (name, partition) in [
            (
                "BUREL",
                run_burel(&table, &QI, attr::SALARY, beta, 9).unwrap(),
            ),
            (
                "LMondrian",
                run_lmondrian(&table, &QI, attr::SALARY, beta).unwrap(),
            ),
            (
                "DMondrian",
                run_dmondrian(&table, &QI, attr::SALARY, beta).unwrap(),
            ),
        ] {
            partition.validate_cover(ROWS).unwrap();
            let real = achieved_beta(&table, &partition);
            assert!(real <= beta + 1e-9, "{name} at beta {beta} achieved {real}");
        }
    }
}

#[test]
fn all_t_algorithms_deliver_t() {
    let table = census();
    for t in [0.15, 0.35] {
        for (name, partition) in [
            (
                "tMondrian",
                run_tmondrian(&table, &QI, attr::SALARY, t).unwrap(),
            ),
            ("SABRE", run_sabre(&table, &QI, attr::SALARY, t, 9).unwrap()),
        ] {
            partition.validate_cover(ROWS).unwrap();
            let (max_t, _) = achieved_closeness(&table, &partition, METRIC);
            assert!(max_t <= t + 1e-9, "{name} at t {t} achieved {max_t}");
        }
    }
}

#[test]
fn dmondrian_is_strictly_more_conservative_than_lmondrian() {
    // δ-disclosure adds a lower bound on every value's frequency, so the
    // same β budget must yield at most as many classes.
    let table = census();
    for beta in [2.0, 4.0] {
        let l = run_lmondrian(&table, &QI, attr::SALARY, beta).unwrap();
        let d = run_dmondrian(&table, &QI, attr::SALARY, beta).unwrap();
        assert!(
            d.num_ecs() <= l.num_ecs(),
            "beta {beta}: DMondrian {} ECs vs LMondrian {}",
            d.num_ecs(),
            l.num_ecs()
        );
    }
}

#[test]
fn t_closeness_schemes_do_not_deliver_beta_likeness() {
    // The core Figure 4 observation: equal t-closeness does not imply
    // comparable β-likeness — the t-calibrated schemes' real β explodes
    // relative to BUREL's.
    let table = census();
    let beta = 3.0;
    let burel_p = run_burel(&table, &QI, attr::SALARY, beta, 9).unwrap();
    let (t_beta, _) = achieved_closeness(&table, &burel_p, METRIC);
    let tm = run_tmondrian(&table, &QI, attr::SALARY, t_beta).unwrap();
    let sb = run_sabre(&table, &QI, attr::SALARY, t_beta, 9).unwrap();
    let burel_beta = achieved_beta(&table, &burel_p);
    let tm_beta = achieved_beta(&table, &tm);
    let sb_beta = achieved_beta(&table, &sb);
    assert!(burel_beta <= beta + 1e-9);
    assert!(
        tm_beta > 2.0 * burel_beta,
        "tMondrian real beta {tm_beta} vs BUREL {burel_beta}"
    );
    assert!(
        sb_beta > 2.0 * burel_beta,
        "SABRE real beta {sb_beta} vs BUREL {burel_beta}"
    );
}

#[test]
fn audits_agree_across_publication_structures() {
    // Whatever the EC geometry, the audit invariants hold for every
    // algorithm's output.
    let table = census();
    let partitions = vec![
        run_burel(&table, &QI, attr::SALARY, 2.0, 9).unwrap(),
        run_lmondrian(&table, &QI, attr::SALARY, 2.0).unwrap(),
        run_tmondrian(&table, &QI, attr::SALARY, 0.3).unwrap(),
        run_sabre(&table, &QI, attr::SALARY, 0.3, 9).unwrap(),
    ];
    for p in &partitions {
        let audit = audit_partition(&table, p, METRIC);
        assert!(audit.avg_beta <= audit.max_beta + 1e-12);
        assert!(audit.avg_closeness <= audit.max_closeness + 1e-12);
        assert!(audit.max_closeness <= 1.0 + 1e-12, "EMD is normalized");
        assert!(audit.min_ec_size >= 1);
        assert_eq!(p.num_rows(), ROWS, "publications cover the table exactly");
    }
}
